package slo

import (
	"strconv"
	"strings"
	"testing"
	"time"

	"nvmcp/internal/obs"
	"nvmcp/internal/sim"
)

// tick drives virtual time forward through the tap with a neutral event —
// the recorder closes any windows the timestamp has moved past.
func tick(r *Recorder, at time.Duration) {
	r.Observe(obs.Event{TUS: at.Microseconds(), Type: "tick"})
}

func newTestRecorder(spec *Spec) (*Recorder, *obs.Registry) {
	reg := obs.NewRegistry()
	return New(Config{Enabled: true, Spec: spec}, reg), reg
}

func TestWindowedSeriesFromCounters(t *testing.T) {
	r, reg := newTestRecorder(nil)
	reg.Counter("precopy_bytes", nil).Add(80)
	reg.Counter("ckpt_bytes", nil).Add(20)
	reg.Counter("chunks_precopied", nil).Add(10)
	reg.Counter("redirtied_chunks", nil).Add(3)
	reg.Counter("recovery_path", obs.Labels{"tier": "local"}).Add(2)
	reg.Timeline("fabric_bytes", obs.Labels{"class": "ckpt"}).Set(time.Second, 1000)
	tick(r, 5*time.Second) // closes [0, 5s)

	wins := r.Windows()
	if len(wins) != 1 {
		t.Fatalf("windows = %d, want 1", len(wins))
	}
	w := wins[0]
	if w.StartUS != 0 || w.EndUS != 5_000_000 || w.Index != 0 {
		t.Fatalf("window bounds = [%d,%d) idx %d", w.StartUS, w.EndUS, w.Index)
	}
	want := map[string]float64{
		"ckpt_window_bytes": 1000,
		"precopy_hit_rate":  0.8,
		"redirty_rate":      0.3,
		"recovery_local":    2,
		"recovery_remote":   0,
		"recovery_bottom":   0,
		"recovery_lost":     0,
		"degraded_seconds":  0,
		"availability":      1,
	}
	for k, v := range want {
		got, ok := w.Values[k]
		if !ok {
			t.Fatalf("window lacks series %q: %v", k, w.Values)
		}
		if diff := got - v; diff > 1e-12 || diff < -1e-12 {
			t.Errorf("%s = %g, want %g", k, got, v)
		}
	}
	if _, ok := w.Values["mttr_seconds"]; ok {
		t.Error("mttr_seconds present with no repairs — no-data series must be absent")
	}

	// Second window sees only the delta, not the cumulative totals.
	reg.Counter("precopy_bytes", nil).Add(20)
	reg.Counter("ckpt_bytes", nil).Add(180)
	reg.Timeline("fabric_bytes", obs.Labels{"class": "ckpt"}).Set(7*time.Second, 1500)
	tick(r, 10*time.Second)
	w2 := r.Windows()[1]
	if got := w2.Values["precopy_hit_rate"]; got != 0.1 {
		t.Errorf("window 1 hit rate = %g, want delta-based 0.1", got)
	}
	if got := w2.Values["ckpt_window_bytes"]; got != 500 {
		t.Errorf("window 1 fabric delta = %g, want 500", got)
	}
}

func TestNoDataSeriesAbsentNotZero(t *testing.T) {
	r, _ := newTestRecorder(nil)
	tick(r, 5*time.Second)
	w := r.Windows()[0]
	for _, absent := range []string{"precopy_hit_rate", "redirty_rate", "mttr_seconds"} {
		if _, ok := w.Values[absent]; ok {
			t.Errorf("idle window carries %q — no data must mean an absent key, never zero", absent)
		}
	}
	if w.Values["availability"] != 1 {
		t.Errorf("idle availability = %g, want 1", w.Values["availability"])
	}
}

func TestDegradedIntervalsAndMTTR(t *testing.T) {
	r, _ := newTestRecorder(nil)
	r.Observe(obs.Event{TUS: 1_000_000, Type: obs.EvFailure, Node: 3})
	r.Observe(obs.Event{TUS: 3_000_000, Type: obs.EvRepairDone, Node: 3,
		Attrs: map[string]string{"mttr_us": strconv.Itoa(2_000_000)}})
	tick(r, 5*time.Second)
	w := r.Windows()[0]
	if got := w.Values["degraded_seconds"]; got != 2 {
		t.Fatalf("degraded = %gs, want 2s", got)
	}
	if got := w.Values["availability"]; got != 0.6 {
		t.Fatalf("availability = %g, want 0.6", got)
	}
	if got := w.Values["mttr_seconds"]; got != 2 {
		t.Fatalf("mttr = %gs, want 2s", got)
	}

	// An outage spanning a window boundary splits across both windows, and a
	// link flap degrades exactly like a failure.
	r.Observe(obs.Event{TUS: 9_000_000, Type: obs.EvLinkFlap, Node: 1})
	r.Observe(obs.Event{TUS: 11_000_000, Type: obs.EvLinkRestore, Node: 1})
	tick(r, 15*time.Second)
	wins := r.Windows()
	if got := wins[1].Values["degraded_seconds"]; got != 1 {
		t.Fatalf("window 1 degraded = %gs, want 1s (flap tail)", got)
	}
	if got := wins[2].Values["degraded_seconds"]; got != 1 {
		t.Fatalf("window 2 degraded = %gs, want 1s (flap head)", got)
	}
	if _, ok := wins[1].Values["mttr_seconds"]; ok {
		t.Error("window 1 carries mttr from window 0 — per-window repair stats must reset")
	}
}

func TestOpenOutageDegradesEveryWindow(t *testing.T) {
	r, _ := newTestRecorder(nil)
	r.Observe(obs.Event{TUS: 2_000_000, Type: obs.EvFailure, Node: 0})
	tick(r, 15*time.Second)
	wins := r.Windows()
	if got := wins[0].Values["degraded_seconds"]; got != 3 {
		t.Fatalf("window 0 degraded = %gs, want 3s", got)
	}
	for i := 1; i < 3; i++ {
		if got := wins[i].Values["availability"]; got != 0 {
			t.Fatalf("window %d availability = %g, want 0 (outage still open)", i, got)
		}
	}
}

func TestBurnRateToleranceAndEpisodes(t *testing.T) {
	spec := &Spec{Objectives: []Objective{{
		Name: "no-loss", Series: "recovery_lost",
		Direction: AtMost, Threshold: 0, Over: 2, Tolerance: 0.5,
	}}}
	r, reg := newTestRecorder(spec)
	lost := reg.Counter("recovery_path", obs.Labels{"tier": "lost"})

	lost.Add(1)
	tick(r, 5*time.Second)  // violating, 1/1 > 0.5 → breach episode 1
	tick(r, 10*time.Second) // clean, ring [viol, clean] = 1/2 → compliant again
	lost.Add(1)
	tick(r, 15*time.Second) // ring [clean, viol] = 1/2 → still compliant
	lost.Add(1)
	tick(r, 20*time.Second) // ring [viol, viol] = 2/2 → breach episode 2

	st := r.Objectives()[0]
	if st.Episodes != 2 {
		t.Fatalf("episodes = %d, want 2 (breach, recover, breach)", st.Episodes)
	}
	if st.Breached != 2 {
		t.Fatalf("breached windows = %d, want 2", st.Breached)
	}
	if st.Evaluated != 4 {
		t.Fatalf("evaluated = %d, want 4", st.Evaluated)
	}
	if !st.InBreach {
		t.Fatal("objective should end in breach")
	}
	if st.Pass {
		t.Fatal("objective with episodes must not pass")
	}
	viols := r.Violations()
	if len(viols) != 2 {
		t.Fatalf("violations = %d, want one per episode", len(viols))
	}
	if viols[0].Window != 0 || viols[1].Window != 3 {
		t.Fatalf("violation windows = %d, %d; want 0 and 3", viols[0].Window, viols[1].Window)
	}
	if !strings.Contains(viols[1].Detail, "2/2 windows") {
		t.Fatalf("violation detail lacks burn fraction: %q", viols[1].Detail)
	}
}

func TestNoDataWindowLeavesBreachStateUnchanged(t *testing.T) {
	spec := &Spec{Objectives: []Objective{{
		Name: "hit", Series: "precopy_hit_rate", Direction: AtLeast, Threshold: 0.5,
	}}}
	r, reg := newTestRecorder(spec)
	reg.Counter("precopy_bytes", nil).Add(10)
	reg.Counter("ckpt_bytes", nil).Add(90)
	tick(r, 5*time.Second)  // hit rate 0.1 → breach
	tick(r, 10*time.Second) // no traffic → no data → state unchanged
	st := r.Objectives()[0]
	if st.Evaluated != 1 {
		t.Fatalf("evaluated = %d, want 1 (no-data window skipped)", st.Evaluated)
	}
	if !st.InBreach {
		t.Fatal("no-data window must not clear the breach")
	}
	if st.Episodes != 1 {
		t.Fatalf("episodes = %d, want 1 (no re-trigger on no-data)", st.Episodes)
	}
}

func TestFinalObjectives(t *testing.T) {
	spec := &Spec{Objectives: []Objective{
		{Name: "mttr", Series: "mttr_seconds", Direction: AtMost, Threshold: 1, Final: true},
		{Name: "no-loss", Series: "recovery_lost", Direction: AtMost, Threshold: 0, Final: true},
		{Name: "availability", Direction: AtLeast, Threshold: 0.99, Final: true},
	}}
	r, reg := newTestRecorder(spec)
	reg.Counter("recovery_path", obs.Labels{"tier": "lost"}).Add(5)
	r.Finalize(10 * time.Second)

	byName := map[string]ObjectiveStatus{}
	for _, st := range r.Objectives() {
		byName[st.Name] = st
	}
	// No repairs ever → mttr has no data → skipped, still passing.
	if st := byName["mttr"]; st.Evaluated != 0 || !st.Pass || st.FinalValue != nil {
		t.Fatalf("no-data final objective = %+v, want skipped and passing", st)
	}
	if st := byName["no-loss"]; st.Pass || st.FinalValue == nil || *st.FinalValue != 5 {
		t.Fatalf("lost-chunks final objective = %+v, want failing at 5", st)
	}
	if st := byName["availability"]; !st.Pass || *st.FinalValue != 1 {
		t.Fatalf("availability final objective = %+v, want passing at 1", st)
	}
	viols := r.Violations()
	if len(viols) != 1 || viols[0].Window != -1 {
		t.Fatalf("violations = %+v, want one final (window -1) breach", viols)
	}
	if err := r.Err(); err == nil || !strings.Contains(err.Error(), "no-loss") {
		t.Fatalf("Err() = %v, want the lost-chunks breach", err)
	}
}

func TestFinalizeClosesPartialTail(t *testing.T) {
	r, _ := newTestRecorder(nil)
	r.Finalize(12 * time.Second)
	wins := r.Windows()
	if len(wins) != 3 {
		t.Fatalf("windows = %d, want 2 full + 1 partial", len(wins))
	}
	tail := wins[2]
	if tail.StartUS != 10_000_000 || tail.EndUS != 12_000_000 {
		t.Fatalf("tail window = [%d,%d), want [10s,12s)", tail.StartUS, tail.EndUS)
	}
	// Idempotent, and later events are ignored.
	r.Finalize(40 * time.Second)
	tick(r, 60*time.Second)
	if got := len(r.Windows()); got != 3 {
		t.Fatalf("windows after late events = %d, want still 3", got)
	}
	if sum := r.Summary(); sum.Windows != 3 {
		t.Fatalf("summary windows = %d, want 3", sum.Windows)
	}
}

func TestWindowRingEviction(t *testing.T) {
	reg := obs.NewRegistry()
	r := New(Config{Enabled: true, MaxWindows: 2}, reg)
	fabric := reg.Timeline("fabric_bytes", obs.Labels{"class": "ckpt"})
	for i := 1; i <= 5; i++ {
		fabric.Set(time.Duration(i)*5*time.Second-time.Second, float64(i)*100)
		tick(r, time.Duration(i)*5*time.Second)
	}
	wins := r.Windows()
	if len(wins) != 2 {
		t.Fatalf("stored windows = %d, want ring cap 2", len(wins))
	}
	if wins[0].Index != 3 || wins[1].Index != 4 {
		t.Fatalf("ring kept windows %d,%d; want the newest 3,4", wins[0].Index, wins[1].Index)
	}
	sum := r.Summary()
	if sum.Windows != 5 || sum.WindowsStored != 2 {
		t.Fatalf("summary = %d total / %d stored, want 5/2", sum.Windows, sum.WindowsStored)
	}
	// The first window's 100-byte burst fell off the ring but the whole-run
	// peak survives eviction.
	if sum.PeakCkptWindowBytes != 100 {
		t.Fatalf("peak = %g, want 100 (aggregates survive eviction)", sum.PeakCkptWindowBytes)
	}
}

func TestViolationRetentionBound(t *testing.T) {
	spec := &Spec{Objectives: []Objective{{
		Name: "no-loss", Series: "recovery_lost", Direction: AtMost, Threshold: 0,
	}}}
	reg := obs.NewRegistry()
	r := New(Config{Enabled: true, Spec: spec, MaxViolations: 1}, reg)
	lost := reg.Counter("recovery_path", obs.Labels{"tier": "lost"})
	for i := 1; i <= 3; i++ {
		lost.Add(1)
		tick(r, time.Duration(i)*5*time.Second)
		tick(r, time.Duration(i)*10*time.Second) // clean window re-arms the episode
	}
	if got := r.ViolationCount(); got != 3 {
		t.Fatalf("violation count = %d, want 3 (counts past retention)", got)
	}
	if got := len(r.Violations()); got != 1 {
		t.Fatalf("retained violations = %d, want bound 1", got)
	}
}

func TestSummaryAggregates(t *testing.T) {
	r, reg := newTestRecorder(nil)
	reg.Counter("precopy_bytes", nil).Add(60)
	reg.Counter("ckpt_bytes", nil).Add(40)
	reg.Counter("chunks_precopied", nil).Add(10)
	reg.Counter("redirtied_chunks", nil).Add(5)
	r.Observe(obs.Event{TUS: 1_000_000, Type: obs.EvFailure, Node: 0})
	r.Observe(obs.Event{TUS: 2_000_000, Type: obs.EvRepairDone, Node: 0,
		Attrs: map[string]string{"mttr_us": "1000000"}})
	r.Finalize(10 * time.Second)
	sum := r.Summary()
	if sum.PrecopyHitRate != 0.6 {
		t.Errorf("hit rate = %g, want 0.6", sum.PrecopyHitRate)
	}
	if sum.RedirtyRate != 0.5 {
		t.Errorf("redirty = %g, want 0.5", sum.RedirtyRate)
	}
	if sum.MTTRSeconds != 1 {
		t.Errorf("mttr = %g, want 1", sum.MTTRSeconds)
	}
	if sum.DegradedSeconds != 1 {
		t.Errorf("degraded = %g, want 1", sum.DegradedSeconds)
	}
	if sum.Availability != 0.9 {
		t.Errorf("availability = %g, want 0.9", sum.Availability)
	}
}

func TestAttachCoexistsWithOtherTaps(t *testing.T) {
	// The recorder attaches additively: an already-installed tap keeps
	// firing alongside it.
	envEvents := 0
	o := obs.New(sim.NewEnv())
	o.AddEventTap(func(obs.Event) { envEvents++ })
	r := Attach(o, Config{Enabled: true})
	o.Recorder(0, "rank0").Emit("tick", "", 0, nil)
	if envEvents != 1 {
		t.Fatalf("prior tap fired %d times, want 1 — Attach must not replace taps", envEvents)
	}
	if r == nil {
		t.Fatal("Attach returned nil recorder")
	}
}
