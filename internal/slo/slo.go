// Package slo is the evaluative layer on top of the raw telemetry: a
// virtual-time flight recorder that folds the obs event bus and metrics
// registry into fixed-width windowed time series (checkpoint-window
// interconnect bytes, pre-copy hit rate, re-dirty rate, per-tier recovery
// counts, MTTR, degraded time, availability), plus a declarative SLO spec —
// objectives with thresholds, directions, evaluation horizons and burn-rate
// style tolerances — evaluated online as each window closes.
//
// The recorder attaches to an Observer as an event tap (alongside the
// lineage tracer), closes windows lazily as virtual time crosses their
// boundaries, and stores closed windows in a bounded ring. Violations mirror
// the lineage package's contract: carried into cluster.Result, fatal under
// strict mode, and summarized into the RunReport. The report sub-files
// render the recorder as a stable JSON artifact, a self-contained HTML page
// with inline SVG charts, and a cross-run regression diff.
package slo

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// Directions an objective can point.
const (
	// AtMost passes while the series value is <= the threshold.
	AtMost = "at_most"
	// AtLeast passes while the series value is >= the threshold.
	AtLeast = "at_least"
)

// seriesNames is the windowed series catalog the flight recorder produces,
// sorted. Objectives must target one of these.
var seriesNames = []string{
	"availability",
	"ckpt_window_bytes",
	"degraded_seconds",
	"mttr_seconds",
	"precopy_hit_rate",
	"recovery_bottom",
	"recovery_local",
	"recovery_lost",
	"recovery_remote",
	"redirty_rate",
}

// SeriesNames returns the windowed series catalog, sorted.
func SeriesNames() []string {
	return append([]string(nil), seriesNames...)
}

func knownSeries(name string) bool {
	i := sort.SearchStrings(seriesNames, name)
	return i < len(seriesNames) && seriesNames[i] == name
}

// Objective is one declarative service-level objective over a windowed
// series.
type Objective struct {
	// Name identifies the objective (unique within a spec).
	Name string `json:"name"`
	// Series names the windowed series evaluated (defaults to Name).
	Series string `json:"series,omitempty"`
	// Direction is AtMost or AtLeast; Threshold is the bound. The threshold
	// value itself passes.
	Direction string  `json:"direction"`
	Threshold float64 `json:"threshold"`
	// Over is the evaluation horizon in windows (default 1): each closed
	// window is judged against the last Over windows that had data.
	Over int `json:"over,omitempty"`
	// Tolerance is the burn-rate style allowance: the fraction of windows in
	// the horizon permitted to violate before the objective breaches
	// (default 0 — any violating window breaches).
	Tolerance float64 `json:"tolerance,omitempty"`
	// Final evaluates the objective once, at end of run, against the
	// whole-run aggregate of the series (peak for ckpt_window_bytes,
	// cumulative rates, mean MTTR, total degraded time, overall
	// availability, total recovery counts) instead of per window.
	Final bool `json:"final,omitempty"`
}

// SeriesName resolves the series the objective targets.
func (o *Objective) SeriesName() string {
	if o.Series != "" {
		return o.Series
	}
	return o.Name
}

// horizon is Over with its default applied.
func (o *Objective) horizon() int {
	if o.Over < 1 {
		return 1
	}
	return o.Over
}

// violated reports whether value v breaks the objective's bound.
func (o *Objective) violated(v float64) bool {
	if o.Direction == AtLeast {
		return v < o.Threshold
	}
	return v > o.Threshold
}

// Spec is the declarative SLO block a scenario embeds.
type Spec struct {
	// WindowSecs is the flight-recorder window width in virtual seconds
	// (default 5 — the Figure 10 bucket).
	WindowSecs float64 `json:"window_secs,omitempty"`
	// Objectives are the run's targets.
	Objectives []Objective `json:"objectives"`
}

// Window returns the spec's window width with the default applied.
func (s *Spec) Window() time.Duration {
	if s == nil || s.WindowSecs <= 0 {
		return DefaultWindow
	}
	return time.Duration(s.WindowSecs * float64(time.Second))
}

// Validate checks the spec, returning actionable errors: unknown series
// list the valid catalog, out-of-range numbers say the range.
func (s *Spec) Validate() error {
	if s == nil {
		return nil
	}
	if s.WindowSecs < 0 {
		return fmt.Errorf("slo: window_secs must be >= 0 (0 = default %gs), got %g",
			DefaultWindow.Seconds(), s.WindowSecs)
	}
	if len(s.Objectives) == 0 {
		return fmt.Errorf("slo: spec has no objectives (series: %s)", strings.Join(seriesNames, ", "))
	}
	seen := make(map[string]bool, len(s.Objectives))
	for i, o := range s.Objectives {
		if o.Name == "" {
			return fmt.Errorf("slo: objective %d has no name", i)
		}
		if seen[o.Name] {
			return fmt.Errorf("slo: duplicate objective name %q", o.Name)
		}
		seen[o.Name] = true
		if !knownSeries(o.SeriesName()) {
			return fmt.Errorf("slo: objective %q targets unknown series %q (valid: %s)",
				o.Name, o.SeriesName(), strings.Join(seriesNames, ", "))
		}
		switch o.Direction {
		case AtMost, AtLeast:
		default:
			return fmt.Errorf("slo: objective %q direction %q (valid: %s, %s)",
				o.Name, o.Direction, AtMost, AtLeast)
		}
		if math.IsNaN(o.Threshold) || math.IsInf(o.Threshold, 0) {
			return fmt.Errorf("slo: objective %q threshold must be finite", o.Name)
		}
		if o.Over < 0 {
			return fmt.Errorf("slo: objective %q over must be >= 0 (0 = 1 window), got %d", o.Name, o.Over)
		}
		if o.Tolerance < 0 || o.Tolerance >= 1 {
			return fmt.Errorf("slo: objective %q tolerance must be in [0,1), got %g", o.Name, o.Tolerance)
		}
		if o.Final && o.Over > 1 {
			return fmt.Errorf("slo: objective %q is final (one whole-run evaluation) but sets over=%d windows",
				o.Name, o.Over)
		}
	}
	return nil
}

// Config tunes the flight recorder.
type Config struct {
	// Enabled turns the recorder (and evaluation, when a Spec is set) on.
	Enabled bool `json:"enabled"`
	// Strict makes the run fail loudly on the first objective breach.
	Strict bool `json:"strict,omitempty"`
	// Spec carries the objectives; nil records the flight series only.
	Spec *Spec `json:"spec,omitempty"`
	// MaxWindows bounds the in-memory window ring (default 512); older
	// windows fall off but the running aggregates keep counting.
	MaxWindows int `json:"max_windows,omitempty"`
	// MaxViolations bounds retained violation details (default 64); the
	// total count keeps counting past it.
	MaxViolations int `json:"max_violations,omitempty"`
}

const (
	// DefaultWindow is the flight-recorder window width when the spec does
	// not set one — the Figure 10 peak-traffic bucket.
	DefaultWindow = 5 * time.Second

	defaultMaxWindows    = 512
	defaultMaxViolations = 64
)

// Violation is one objective breach episode.
type Violation struct {
	// TUS is the virtual close time of the breaching window (for final
	// objectives: the end of the run).
	TUS int64 `json:"t_us"`
	// Window is the breaching window's index (-1 for final objectives).
	Window    int     `json:"window"`
	Objective string  `json:"objective"`
	Series    string  `json:"series"`
	Value     float64 `json:"value"`
	Threshold float64 `json:"threshold"`
	Direction string  `json:"direction"`
	Detail    string  `json:"detail"`
}

func (v Violation) String() string {
	return fmt.Sprintf("t=%dus objective=%s: %s", v.TUS, v.Objective, v.Detail)
}
