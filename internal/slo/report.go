package slo

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"nvmcp/internal/drift"
)

// SchemaVersion identifies the run-report JSON layout. Bump on incompatible
// change; the diff refuses to compare mismatched versions.
const SchemaVersion = 1

// Meta is the run identity stamped into a report. Everything here is
// deterministic — no wall-clock timestamps — so golden files and checked-in
// baselines stay byte-stable.
type Meta struct {
	Tool     string `json:"tool"`
	Scenario string `json:"scenario,omitempty"`
	Seed     int64  `json:"seed,omitempty"`
}

// Report is the stable JSON artifact one run emits: identity, the windowed
// time series, the objective verdicts, the violations, and the rollup. The
// same struct feeds the HTML renderer and the cross-run diff.
type Report struct {
	SchemaVersion int    `json:"schema_version"`
	Tool          string `json:"tool"`
	Scenario      string `json:"scenario,omitempty"`
	Seed          int64  `json:"seed,omitempty"`
	WindowUS      int64  `json:"window_us"`
	VirtualEndUS  int64  `json:"virtual_end_us"`
	// Series lists the windowed series catalog, sorted.
	Series []string `json:"series"`
	// Windows are the retained closed windows, oldest first.
	Windows    []Window    `json:"windows"`
	Violations []Violation `json:"violations"`
	Summary    Summary     `json:"summary"`
	// Drift embeds the model-drift observatory's report when the run had
	// drift enabled; the HTML renderer appends its predicted-vs-measured
	// section.
	Drift *drift.Report `json:"drift,omitempty"`
}

// BuildReport renders the recorder into the artifact form. Call after
// Finalize so final objectives and the tail window are present.
func BuildReport(r *Recorder, meta Meta) Report {
	r.mu.Lock()
	endUS := r.endTime.Microseconds()
	if !r.finalized {
		endUS = r.curStart.Microseconds()
	}
	r.mu.Unlock()
	sum := r.Summary()
	rep := Report{
		SchemaVersion: SchemaVersion,
		Tool:          meta.Tool,
		Scenario:      meta.Scenario,
		Seed:          meta.Seed,
		WindowUS:      sum.WindowUS,
		VirtualEndUS:  endUS,
		Series:        SeriesNames(),
		Windows:       r.Windows(),
		Violations:    r.Violations(),
		Summary:       sum,
	}
	if rep.Windows == nil {
		rep.Windows = []Window{}
	}
	if rep.Violations == nil {
		rep.Violations = []Violation{}
	}
	return rep
}

// WriteJSON renders the report as indented, key-sorted (Go maps marshal
// sorted), byte-stable JSON.
func WriteJSON(w io.Writer, rep Report) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return fmt.Errorf("slo: encode report: %w", err)
	}
	return nil
}

// ReadReportFile loads a report artifact, checking the schema version.
func ReadReportFile(path string) (Report, error) {
	var rep Report
	data, err := os.ReadFile(path)
	if err != nil {
		return rep, fmt.Errorf("slo: read report: %w", err)
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		return rep, fmt.Errorf("slo: parse report %s: %w", path, err)
	}
	if rep.SchemaVersion != SchemaVersion {
		return rep, fmt.Errorf("slo: report %s has schema version %d, this build understands %d",
			path, rep.SchemaVersion, SchemaVersion)
	}
	return rep, nil
}
