package slo

import (
	"fmt"
	"html"
	"io"
	"math"
	"strings"

	"nvmcp/internal/report"
)

// WriteHTML renders the report as a single self-contained page: run
// metadata, headline stat tiles, the objective verdict table, one inline
// SVG time-series chart per windowed series (step line per window, dashed
// threshold lines, violation markers), the violation log, a collapsed
// per-window data table, and — when a drift report is embedded — the
// predicted-vs-measured model-drift section. No external assets, no
// wall-clock content — the output is byte-stable for a deterministic run.
// The palette, chart geometry and tooltip script come from internal/report.
func WriteHTML(w io.Writer, rep Report) error {
	var b strings.Builder
	report.WriteHead(&b, "SLO run report")
	writeHeader(&b, rep)
	writeTiles(&b, rep)
	writeObjectiveTable(&b, rep)
	writeCharts(&b, rep)
	writeViolations(&b, rep)
	writeWindowTable(&b, rep)
	if rep.Drift != nil {
		rep.Drift.WriteHTMLSection(&b)
	}
	report.WriteTail(&b)
	_, err := io.WriteString(w, b.String())
	if err != nil {
		return fmt.Errorf("slo: write html report: %w", err)
	}
	return nil
}

func writeHeader(b *strings.Builder, rep Report) {
	fmt.Fprintf(b, "<h1>SLO run report</h1>\n<div class=\"meta\">%s", html.EscapeString(rep.Tool))
	if rep.Scenario != "" {
		fmt.Fprintf(b, " · scenario %s", html.EscapeString(rep.Scenario))
	}
	if rep.Seed != 0 {
		fmt.Fprintf(b, " · seed %d", rep.Seed)
	}
	fmt.Fprintf(b, " · window %s · virtual end %s · %d windows</div>\n",
		report.FmtSecs(float64(rep.WindowUS)/1e6), report.FmtSecs(float64(rep.VirtualEndUS)/1e6), rep.Summary.Windows)
}

func writeTiles(b *strings.Builder, rep Report) {
	s := rep.Summary
	b.WriteString("<div class=\"tiles\">\n")
	tile := func(k, v string, bad bool) {
		cls := "v"
		if bad {
			cls = "v bad"
		}
		fmt.Fprintf(b, "<div class=\"tile\"><div class=\"k\">%s</div><div class=\"%s\">%s</div></div>\n",
			html.EscapeString(k), cls, html.EscapeString(v))
	}
	tile("Availability", report.FmtPct(s.Availability), false)
	tile("Peak ckpt window", report.FmtBytes(s.PeakCkptWindowBytes), false)
	tile("Pre-copy hit rate", report.FmtPct(s.PrecopyHitRate), false)
	tile("Re-dirty rate", report.FmtPct(s.RedirtyRate), false)
	if s.MTTRSeconds > 0 {
		tile("MTTR", report.FmtSecs(s.MTTRSeconds), false)
	}
	if s.ViolationCount > 0 {
		tile("Violations", fmt.Sprintf("⚠ %d", s.ViolationCount), true)
	} else if len(s.Objectives) > 0 {
		tile("Violations", "0", false)
	}
	b.WriteString("</div>\n")
}

func writeObjectiveTable(b *strings.Builder, rep Report) {
	if len(rep.Summary.Objectives) == 0 {
		return
	}
	b.WriteString("<h2>Objectives</h2>\n<table class=\"data\">\n<tr><th>Objective</th><th>Bound</th><th>Scope</th><th>Windows</th><th>Breached</th><th>Episodes</th><th>Value</th><th>Verdict</th></tr>\n")
	for _, o := range rep.Summary.Objectives {
		scope := fmt.Sprintf("last %d win", o.Over)
		if o.Final {
			scope = "whole run"
		}
		if o.Tolerance > 0 {
			scope += fmt.Sprintf(", tol %g", o.Tolerance)
		}
		val := "–"
		if v := pickValue(o); v != nil {
			val = fmtSeriesValue(o.Series, *v)
		}
		verdict := "<span class=\"pass\">✓ pass</span>"
		if !o.Pass {
			verdict = "<span class=\"fail\">✗ fail</span>"
		}
		fmt.Fprintf(b, "<tr><td>%s</td><td>%s %s %s</td><td>%s</td><td class=\"num\">%d</td><td class=\"num\">%d</td><td class=\"num\">%d</td><td class=\"num\">%s</td><td>%s</td></tr>\n",
			html.EscapeString(o.Name), html.EscapeString(o.Series), dirGlyph(o.Direction),
			fmtSeriesValue(o.Series, o.Threshold), scope, o.Evaluated, o.Breached, o.Episodes, val, verdict)
	}
	b.WriteString("</table>\n")
}

func pickValue(o ObjectiveStatus) *float64 {
	if o.FinalValue != nil {
		return o.FinalValue
	}
	return o.LastValue
}

func dirGlyph(direction string) string {
	if direction == AtLeast {
		return "≥" // ≥
	}
	return "≤" // ≤
}

func writeCharts(b *strings.Builder, rep Report) {
	if len(rep.Windows) == 0 {
		return
	}
	b.WriteString("<h2>Windowed series</h2>\n")
	for _, series := range rep.Series {
		writeChart(b, rep, series)
	}
}

// writeChart renders one series as a shared-helper step chart: dashed
// threshold lines for objectives on the series and status-critical markers
// at violating windows.
func writeChart(b *strings.Builder, rep Report, series string) {
	violAt := map[int]Violation{}
	for _, v := range rep.Violations {
		if v.Series == series && v.Window >= 0 {
			violAt[v.Window] = v
		}
	}

	var pts []report.StepPoint
	minV := math.Inf(1)
	for _, w := range rep.Windows {
		v, ok := w.Values[series]
		if !ok {
			continue
		}
		minV = math.Min(minV, v)
		label := fmt.Sprintf("[%s, %s) %s = %s",
			report.FmtSecs(float64(w.StartUS)/1e6), report.FmtSecs(float64(w.EndUS)/1e6),
			series, fmtSeriesValue(series, v))
		viol, bad := violAt[w.Index]
		if bad {
			label = "⚠ " + label + " — " + viol.Objective
		}
		pts = append(pts, report.StepPoint{StartUS: w.StartUS, EndUS: w.EndUS, V: v, Label: label, Bad: bad})
	}
	if len(pts) == 0 {
		return
	}

	// Objectives attached to this series become threshold annotations.
	var ths []report.Threshold
	negThreshold := false
	for _, o := range rep.Summary.Objectives {
		if o.Series != series || o.Final {
			continue
		}
		ths = append(ths, report.Threshold{
			Label: fmt.Sprintf("%s %s %s", o.Name, dirGlyph(o.Direction), fmtSeriesValue(series, o.Threshold)),
			V:     o.Threshold,
		})
		if o.Threshold < 0 {
			negThreshold = true
		}
	}

	sub := "no objective on this series"
	if n := len(violAt); n > 0 {
		sub = fmt.Sprintf("<span class=\"viol\">⚠ %d violating window(s)</span>", n)
	} else if len(ths) > 0 {
		sub = "within objective"
	}

	report.WriteStepChart(b, report.StepChart{
		Title:      seriesTitle(series),
		SubHTML:    sub,
		Series:     []report.StepSeries{{Name: series, Color: 1, Points: pts}},
		Thresholds: ths,
		Fmt:        func(v float64) string { return fmtSeriesValue(series, v) },
		ClampZero:  series != "availability" && minV >= 0 && !negThreshold,
	})
}

func writeViolations(b *strings.Builder, rep Report) {
	if len(rep.Violations) == 0 {
		return
	}
	b.WriteString("<h2>Violations</h2>\n<table class=\"data\">\n<tr><th>Virtual time</th><th>Window</th><th>Objective</th><th>Detail</th></tr>\n")
	for _, v := range rep.Violations {
		win := "final"
		if v.Window >= 0 {
			win = fmt.Sprintf("%d", v.Window)
		}
		fmt.Fprintf(b, "<tr><td class=\"num\">%s</td><td class=\"num\">%s</td><td>%s</td><td>%s</td></tr>\n",
			report.FmtSecs(float64(v.TUS)/1e6), win, html.EscapeString(v.Objective), html.EscapeString(v.Detail))
	}
	b.WriteString("</table>\n")
}

// writeWindowTable is the table view of the charts, collapsed by default.
func writeWindowTable(b *strings.Builder, rep Report) {
	if len(rep.Windows) == 0 {
		return
	}
	b.WriteString("<details><summary>Window data table</summary>\n<table class=\"data\">\n<tr><th>#</th><th>Start</th><th>End</th>")
	for _, s := range rep.Series {
		fmt.Fprintf(b, "<th>%s</th>", html.EscapeString(s))
	}
	b.WriteString("</tr>\n")
	for _, w := range rep.Windows {
		fmt.Fprintf(b, "<tr><td class=\"num\">%d</td><td class=\"num\">%s</td><td class=\"num\">%s</td>",
			w.Index, report.FmtSecs(float64(w.StartUS)/1e6), report.FmtSecs(float64(w.EndUS)/1e6))
		for _, s := range rep.Series {
			if v, ok := w.Values[s]; ok {
				fmt.Fprintf(b, "<td class=\"num\">%s</td>", html.EscapeString(fmtSeriesValue(s, v)))
			} else {
				b.WriteString("<td class=\"num\">–</td>")
			}
		}
		b.WriteString("</tr>\n")
	}
	b.WriteString("</table>\n</details>\n")
}

// seriesTitle spells the series name out for chart headers.
func seriesTitle(series string) string {
	switch series {
	case "ckpt_window_bytes":
		return "Checkpoint-window interconnect bytes"
	case "precopy_hit_rate":
		return "Pre-copy hit rate"
	case "redirty_rate":
		return "Re-dirty rate"
	case "mttr_seconds":
		return "Mean time to repair"
	case "degraded_seconds":
		return "Degraded time per window"
	case "availability":
		return "Availability"
	case "recovery_local":
		return "Chunks recovered from local NVM"
	case "recovery_remote":
		return "Chunks recovered from buddy"
	case "recovery_bottom":
		return "Chunks recovered from PFS"
	case "recovery_lost":
		return "Chunks lost"
	}
	return series
}

// fmtSeriesValue formats a value in the series' natural unit.
func fmtSeriesValue(series string, v float64) string {
	switch series {
	case "ckpt_window_bytes":
		return report.FmtBytes(v)
	case "precopy_hit_rate", "redirty_rate", "availability":
		return report.FmtPct(v)
	case "mttr_seconds", "degraded_seconds":
		return report.FmtSecs(v)
	}
	if v == math.Trunc(v) {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.2f", v)
}
