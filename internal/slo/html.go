package slo

import (
	"fmt"
	"html"
	"io"
	"math"
	"sort"
	"strings"
)

// WriteHTML renders the report as a single self-contained page: run
// metadata, headline stat tiles, the objective verdict table, one inline
// SVG time-series chart per windowed series (step line per window, dashed
// threshold lines, violation markers), the violation log, and a collapsed
// per-window data table. No external assets, no wall-clock content — the
// output is byte-stable for a deterministic run.
func WriteHTML(w io.Writer, rep Report) error {
	var b strings.Builder
	b.WriteString(htmlHead)
	writeHeader(&b, rep)
	writeTiles(&b, rep)
	writeObjectiveTable(&b, rep)
	writeCharts(&b, rep)
	writeViolations(&b, rep)
	writeWindowTable(&b, rep)
	b.WriteString(htmlTail)
	_, err := io.WriteString(w, b.String())
	if err != nil {
		return fmt.Errorf("slo: write html report: %w", err)
	}
	return nil
}

// Design tokens per the reference palette: chart surfaces, ink hierarchy,
// hairline grid, categorical slot 1 (blue) for the single data series, and
// the reserved status-critical red for violations — declared once as custom
// properties with the dark steps under both the media query and an explicit
// data-theme scope.
const htmlHead = `<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>SLO run report</title>
<style>
.viz-root {
  --surface-1: #fcfcfb;
  --page: #f9f9f7;
  --text-primary: #0b0b0b;
  --text-secondary: #52514e;
  --text-muted: #898781;
  --gridline: #e1e0d9;
  --axis: #c3c2b7;
  --series-1: #2a78d6;
  --status-critical: #d03b3b;
  --status-good: #0ca30c;
}
@media (prefers-color-scheme: dark) {
  :where(.viz-root) {
    color-scheme: dark;
    --surface-1: #1a1a19;
    --page: #0d0d0d;
    --text-primary: #ffffff;
    --text-secondary: #c3c2b7;
    --text-muted: #898781;
    --gridline: #2c2c2a;
    --axis: #383835;
    --series-1: #3987e5;
  }
}
:root[data-theme="dark"] .viz-root {
  color-scheme: dark;
  --surface-1: #1a1a19;
  --page: #0d0d0d;
  --text-primary: #ffffff;
  --text-secondary: #c3c2b7;
  --text-muted: #898781;
  --gridline: #2c2c2a;
  --axis: #383835;
  --series-1: #3987e5;
}
.viz-root {
  font-family: system-ui, -apple-system, "Segoe UI", sans-serif;
  background: var(--page);
  color: var(--text-primary);
  margin: 0;
  padding: 24px;
}
.viz-root h1 { font-size: 20px; margin: 0 0 4px; }
.viz-root h2 { font-size: 14px; font-weight: 600; margin: 28px 0 8px; color: var(--text-primary); }
.meta { color: var(--text-secondary); font-size: 13px; margin-bottom: 20px; }
.tiles { display: flex; flex-wrap: wrap; gap: 12px; margin-bottom: 8px; }
.tile {
  background: var(--surface-1); border: 1px solid var(--gridline);
  border-radius: 8px; padding: 12px 16px; min-width: 130px;
}
.tile .k { font-size: 12px; color: var(--text-secondary); }
.tile .v { font-size: 22px; font-weight: 600; margin-top: 2px; }
.tile .v.bad { color: var(--status-critical); }
table.data {
  border-collapse: collapse; font-size: 13px;
  background: var(--surface-1); border: 1px solid var(--gridline); border-radius: 8px;
}
table.data th, table.data td { padding: 6px 12px; text-align: left; border-bottom: 1px solid var(--gridline); }
table.data th { color: var(--text-secondary); font-weight: 600; }
table.data tr:last-child td { border-bottom: none; }
table.data td.num { text-align: right; font-variant-numeric: tabular-nums; }
.pass { color: var(--status-good); }
.fail { color: var(--status-critical); font-weight: 600; }
.chart-card {
  background: var(--surface-1); border: 1px solid var(--gridline);
  border-radius: 8px; padding: 12px 16px 8px; margin-bottom: 14px; max-width: 700px;
  position: relative;
}
.chart-card .t { font-size: 13px; font-weight: 600; }
.chart-card .s { font-size: 12px; color: var(--text-secondary); margin-bottom: 4px; }
.chart-card .s .viol { color: var(--status-critical); font-weight: 600; }
.tooltip {
  position: absolute; pointer-events: none; display: none;
  background: var(--surface-1); border: 1px solid var(--axis); border-radius: 6px;
  padding: 4px 8px; font-size: 12px; color: var(--text-primary);
  box-shadow: 0 2px 6px rgba(0,0,0,0.12); white-space: nowrap; z-index: 2;
}
details { margin-top: 12px; }
details summary { cursor: pointer; color: var(--text-secondary); font-size: 13px; }
svg text { font-family: inherit; }
</style>
</head>
<body class="viz-root">
`

const htmlTail = `<script>
// Nearest-point hover tooltip: each chart point carries its label in
// data-l; the crosshair picks the closest point by x within the plot.
document.querySelectorAll('.chart-card').forEach(function (card) {
  var svg = card.querySelector('svg');
  var tip = card.querySelector('.tooltip');
  if (!svg || !tip) return;
  var pts = Array.prototype.slice.call(svg.querySelectorAll('circle[data-l]'));
  if (!pts.length) return;
  svg.addEventListener('mousemove', function (ev) {
    var rect = svg.getBoundingClientRect();
    var sx = svg.viewBox.baseVal.width / rect.width;
    var x = (ev.clientX - rect.left) * sx;
    var best = null, bd = 1e9;
    pts.forEach(function (p) {
      var d = Math.abs(parseFloat(p.getAttribute('cx')) - x);
      if (d < bd) { bd = d; best = p; }
    });
    if (!best || bd > 40) { tip.style.display = 'none'; return; }
    tip.textContent = best.getAttribute('data-l');
    tip.style.display = 'block';
    var cx = parseFloat(best.getAttribute('cx')) / sx;
    tip.style.left = Math.min(cx + 12, rect.width - 150) + 'px';
    tip.style.top = (parseFloat(best.getAttribute('cy')) / sx - 8) + 'px';
  });
  svg.addEventListener('mouseleave', function () { tip.style.display = 'none'; });
});
</script>
</body>
</html>
`

func writeHeader(b *strings.Builder, rep Report) {
	fmt.Fprintf(b, "<h1>SLO run report</h1>\n<div class=\"meta\">%s", html.EscapeString(rep.Tool))
	if rep.Scenario != "" {
		fmt.Fprintf(b, " · scenario %s", html.EscapeString(rep.Scenario))
	}
	if rep.Seed != 0 {
		fmt.Fprintf(b, " · seed %d", rep.Seed)
	}
	fmt.Fprintf(b, " · window %s · virtual end %s · %d windows</div>\n",
		fmtSecs(float64(rep.WindowUS)/1e6), fmtSecs(float64(rep.VirtualEndUS)/1e6), rep.Summary.Windows)
}

func writeTiles(b *strings.Builder, rep Report) {
	s := rep.Summary
	b.WriteString("<div class=\"tiles\">\n")
	tile := func(k, v string, bad bool) {
		cls := "v"
		if bad {
			cls = "v bad"
		}
		fmt.Fprintf(b, "<div class=\"tile\"><div class=\"k\">%s</div><div class=\"%s\">%s</div></div>\n",
			html.EscapeString(k), cls, html.EscapeString(v))
	}
	tile("Availability", fmtPct(s.Availability), false)
	tile("Peak ckpt window", fmtBytes(s.PeakCkptWindowBytes), false)
	tile("Pre-copy hit rate", fmtPct(s.PrecopyHitRate), false)
	tile("Re-dirty rate", fmtPct(s.RedirtyRate), false)
	if s.MTTRSeconds > 0 {
		tile("MTTR", fmtSecs(s.MTTRSeconds), false)
	}
	if s.ViolationCount > 0 {
		tile("Violations", fmt.Sprintf("⚠ %d", s.ViolationCount), true)
	} else if len(s.Objectives) > 0 {
		tile("Violations", "0", false)
	}
	b.WriteString("</div>\n")
}

func writeObjectiveTable(b *strings.Builder, rep Report) {
	if len(rep.Summary.Objectives) == 0 {
		return
	}
	b.WriteString("<h2>Objectives</h2>\n<table class=\"data\">\n<tr><th>Objective</th><th>Bound</th><th>Scope</th><th>Windows</th><th>Breached</th><th>Episodes</th><th>Value</th><th>Verdict</th></tr>\n")
	for _, o := range rep.Summary.Objectives {
		scope := fmt.Sprintf("last %d win", o.Over)
		if o.Final {
			scope = "whole run"
		}
		if o.Tolerance > 0 {
			scope += fmt.Sprintf(", tol %g", o.Tolerance)
		}
		val := "–"
		if v := pickValue(o); v != nil {
			val = fmtSeriesValue(o.Series, *v)
		}
		verdict := "<span class=\"pass\">✓ pass</span>"
		if !o.Pass {
			verdict = "<span class=\"fail\">✗ fail</span>"
		}
		fmt.Fprintf(b, "<tr><td>%s</td><td>%s %s %s</td><td>%s</td><td class=\"num\">%d</td><td class=\"num\">%d</td><td class=\"num\">%d</td><td class=\"num\">%s</td><td>%s</td></tr>\n",
			html.EscapeString(o.Name), html.EscapeString(o.Series), dirGlyph(o.Direction),
			fmtSeriesValue(o.Series, o.Threshold), scope, o.Evaluated, o.Breached, o.Episodes, val, verdict)
	}
	b.WriteString("</table>\n")
}

func pickValue(o ObjectiveStatus) *float64 {
	if o.FinalValue != nil {
		return o.FinalValue
	}
	return o.LastValue
}

func dirGlyph(direction string) string {
	if direction == AtLeast {
		return "≥" // ≥
	}
	return "≤" // ≤
}

// chart geometry (SVG user units).
const (
	chW, chH   = 660, 220
	padL, padR = 62, 14
	padT, padB = 14, 30
	plotW      = chW - padL - padR
	plotH      = chH - padT - padB
)

func writeCharts(b *strings.Builder, rep Report) {
	if len(rep.Windows) == 0 {
		return
	}
	b.WriteString("<h2>Windowed series</h2>\n")
	for _, series := range rep.Series {
		writeChart(b, rep, series)
	}
}

// writeChart renders one series as a step line over its windows: a
// horizontal segment per window at its value, broken across no-data
// windows, with dashed threshold lines for objectives on the series and
// status-critical markers at violating windows.
func writeChart(b *strings.Builder, rep Report, series string) {
	type pt struct {
		w Window
		v float64
	}
	var pts []pt
	for _, w := range rep.Windows {
		if v, ok := w.Values[series]; ok {
			pts = append(pts, pt{w, v})
		}
	}
	if len(pts) == 0 {
		return
	}

	// Objectives and violations attached to this series.
	var objs []ObjectiveStatus
	for _, o := range rep.Summary.Objectives {
		if o.Series == series && !o.Final {
			objs = append(objs, o)
		}
	}
	violAt := map[int]Violation{}
	for _, v := range rep.Violations {
		if v.Series == series && v.Window >= 0 {
			violAt[v.Window] = v
		}
	}

	// Scales.
	t0 := float64(rep.Windows[0].StartUS) / 1e6
	t1 := float64(rep.Windows[len(rep.Windows)-1].EndUS) / 1e6
	if t1 <= t0 {
		t1 = t0 + 1
	}
	lo, hi := pts[0].v, pts[0].v
	for _, p := range pts {
		lo, hi = math.Min(lo, p.v), math.Max(hi, p.v)
	}
	for _, o := range objs {
		lo, hi = math.Min(lo, o.Threshold), math.Max(hi, o.Threshold)
	}
	if lo > 0 && lo < hi*0.5 {
		lo = 0 // near-zero floors read better anchored at zero
	}
	if hi == lo {
		hi = lo + 1
	}
	pad := (hi - lo) * 0.08
	lo, hi = lo-pad, hi+pad
	if series != "availability" && lo < 0 && minValue(pts, func(p pt) float64 { return p.v }) >= 0 && !hasNegThreshold(objs) {
		lo = 0
	}
	xOf := func(t float64) float64 { return padL + (t-t0)/(t1-t0)*plotW }
	yOf := func(v float64) float64 { return padT + (hi-v)/(hi-lo)*plotH }

	// Card header: series name + violation count (icon + label, not color
	// alone).
	fmt.Fprintf(b, "<div class=\"chart-card\"><div class=\"t\">%s</div>\n", html.EscapeString(seriesTitle(series)))
	if n := len(violAt); n > 0 {
		fmt.Fprintf(b, "<div class=\"s\"><span class=\"viol\">⚠ %d violating window(s)</span></div>\n", n)
	} else if len(objs) > 0 {
		b.WriteString("<div class=\"s\">within objective</div>\n")
	} else {
		b.WriteString("<div class=\"s\">no objective on this series</div>\n")
	}

	fmt.Fprintf(b, "<svg viewBox=\"0 0 %d %d\" role=\"img\" aria-label=\"%s over virtual time\">\n",
		chW, chH, html.EscapeString(seriesTitle(series)))

	// Recessive horizontal gridlines + y tick labels (muted ink).
	for _, tv := range niceTicks(lo, hi, 4) {
		y := yOf(tv)
		fmt.Fprintf(b, "<line x1=\"%d\" y1=\"%.1f\" x2=\"%d\" y2=\"%.1f\" stroke=\"var(--gridline)\" stroke-width=\"1\"/>\n",
			padL, y, chW-padR, y)
		fmt.Fprintf(b, "<text x=\"%d\" y=\"%.1f\" fill=\"var(--text-muted)\" font-size=\"11\" text-anchor=\"end\">%s</text>\n",
			padL-6, y+4, html.EscapeString(fmtSeriesValue(series, tv)))
	}
	// Baseline axis + x tick labels.
	fmt.Fprintf(b, "<line x1=\"%d\" y1=\"%d\" x2=\"%d\" y2=\"%d\" stroke=\"var(--axis)\" stroke-width=\"1\"/>\n",
		padL, chH-padB, chW-padR, chH-padB)
	for _, tv := range niceTicks(t0, t1, 5) {
		x := xOf(tv)
		fmt.Fprintf(b, "<text x=\"%.1f\" y=\"%d\" fill=\"var(--text-muted)\" font-size=\"11\" text-anchor=\"middle\">%s</text>\n",
			x, chH-padB+16, html.EscapeString(fmtSecs(tv)))
	}

	// Threshold lines: dashed, secondary ink (thresholds are annotations,
	// not series), labeled at the right edge.
	for _, o := range objs {
		y := yOf(o.Threshold)
		fmt.Fprintf(b, "<line x1=\"%d\" y1=\"%.1f\" x2=\"%d\" y2=\"%.1f\" stroke=\"var(--text-muted)\" stroke-width=\"1\" stroke-dasharray=\"5 4\"/>\n",
			padL, y, chW-padR, y)
		fmt.Fprintf(b, "<text x=\"%d\" y=\"%.1f\" fill=\"var(--text-secondary)\" font-size=\"11\" text-anchor=\"end\">%s %s %s</text>\n",
			chW-padR, y-4, html.EscapeString(o.Name), dirGlyph(o.Direction),
			html.EscapeString(fmtSeriesValue(series, o.Threshold)))
	}

	// The step line: one horizontal segment per window, joined while
	// windows are contiguous, broken across no-data gaps. Single series →
	// categorical slot 1, 2px.
	var path strings.Builder
	prevEnd := int64(math.MinInt64)
	for _, p := range pts {
		x0, x1 := xOf(float64(p.w.StartUS)/1e6), xOf(float64(p.w.EndUS)/1e6)
		y := yOf(p.v)
		if p.w.StartUS == prevEnd {
			fmt.Fprintf(&path, "L%.1f %.1f L%.1f %.1f ", x0, y, x1, y)
		} else {
			fmt.Fprintf(&path, "M%.1f %.1f L%.1f %.1f ", x0, y, x1, y)
		}
		prevEnd = p.w.EndUS
	}
	fmt.Fprintf(b, "<path d=\"%s\" fill=\"none\" stroke=\"var(--series-1)\" stroke-width=\"2\" stroke-linejoin=\"round\"/>\n",
		strings.TrimSpace(path.String()))

	// Hover targets at window midpoints (invisible until hovered via the
	// tooltip script; violating windows get a visible critical marker with
	// a 2px surface ring).
	for _, p := range pts {
		xm := xOf((float64(p.w.StartUS) + float64(p.w.EndUS)) / 2e6)
		y := yOf(p.v)
		label := fmt.Sprintf("[%s, %s) %s = %s",
			fmtSecs(float64(p.w.StartUS)/1e6), fmtSecs(float64(p.w.EndUS)/1e6),
			series, fmtSeriesValue(series, p.v))
		if v, bad := violAt[p.w.Index]; bad {
			label = "⚠ " + label + " — " + v.Objective
			fmt.Fprintf(b, "<circle cx=\"%.1f\" cy=\"%.1f\" r=\"6\" fill=\"var(--surface-1)\"/>\n", xm, y)
			fmt.Fprintf(b, "<circle cx=\"%.1f\" cy=\"%.1f\" r=\"4\" fill=\"var(--status-critical)\" data-l=\"%s\"><title>%s</title></circle>\n",
				xm, y, html.EscapeString(label), html.EscapeString(label))
		} else {
			fmt.Fprintf(b, "<circle cx=\"%.1f\" cy=\"%.1f\" r=\"8\" fill=\"transparent\" data-l=\"%s\"><title>%s</title></circle>\n",
				xm, y, html.EscapeString(label), html.EscapeString(label))
		}
	}
	b.WriteString("</svg>\n<div class=\"tooltip\"></div>\n</div>\n")
}

func minValue[T any](xs []T, f func(T) float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		m = math.Min(m, f(x))
	}
	return m
}

func hasNegThreshold(objs []ObjectiveStatus) bool {
	for _, o := range objs {
		if o.Threshold < 0 {
			return true
		}
	}
	return false
}

func writeViolations(b *strings.Builder, rep Report) {
	if len(rep.Violations) == 0 {
		return
	}
	b.WriteString("<h2>Violations</h2>\n<table class=\"data\">\n<tr><th>Virtual time</th><th>Window</th><th>Objective</th><th>Detail</th></tr>\n")
	for _, v := range rep.Violations {
		win := "final"
		if v.Window >= 0 {
			win = fmt.Sprintf("%d", v.Window)
		}
		fmt.Fprintf(b, "<tr><td class=\"num\">%s</td><td class=\"num\">%s</td><td>%s</td><td>%s</td></tr>\n",
			fmtSecs(float64(v.TUS)/1e6), win, html.EscapeString(v.Objective), html.EscapeString(v.Detail))
	}
	b.WriteString("</table>\n")
}

// writeWindowTable is the table view of the charts, collapsed by default.
func writeWindowTable(b *strings.Builder, rep Report) {
	if len(rep.Windows) == 0 {
		return
	}
	b.WriteString("<details><summary>Window data table</summary>\n<table class=\"data\">\n<tr><th>#</th><th>Start</th><th>End</th>")
	for _, s := range rep.Series {
		fmt.Fprintf(b, "<th>%s</th>", html.EscapeString(s))
	}
	b.WriteString("</tr>\n")
	for _, w := range rep.Windows {
		fmt.Fprintf(b, "<tr><td class=\"num\">%d</td><td class=\"num\">%s</td><td class=\"num\">%s</td>",
			w.Index, fmtSecs(float64(w.StartUS)/1e6), fmtSecs(float64(w.EndUS)/1e6))
		for _, s := range rep.Series {
			if v, ok := w.Values[s]; ok {
				fmt.Fprintf(b, "<td class=\"num\">%s</td>", html.EscapeString(fmtSeriesValue(s, v)))
			} else {
				b.WriteString("<td class=\"num\">–</td>")
			}
		}
		b.WriteString("</tr>\n")
	}
	b.WriteString("</table>\n</details>\n")
}

// seriesTitle spells the series name out for chart headers.
func seriesTitle(series string) string {
	switch series {
	case "ckpt_window_bytes":
		return "Checkpoint-window interconnect bytes"
	case "precopy_hit_rate":
		return "Pre-copy hit rate"
	case "redirty_rate":
		return "Re-dirty rate"
	case "mttr_seconds":
		return "Mean time to repair"
	case "degraded_seconds":
		return "Degraded time per window"
	case "availability":
		return "Availability"
	case "recovery_local":
		return "Chunks recovered from local NVM"
	case "recovery_remote":
		return "Chunks recovered from buddy"
	case "recovery_bottom":
		return "Chunks recovered from PFS"
	case "recovery_lost":
		return "Chunks lost"
	}
	return series
}

// fmtSeriesValue formats a value in the series' natural unit.
func fmtSeriesValue(series string, v float64) string {
	switch series {
	case "ckpt_window_bytes":
		return fmtBytes(v)
	case "precopy_hit_rate", "redirty_rate", "availability":
		return fmtPct(v)
	case "mttr_seconds", "degraded_seconds":
		return fmtSecs(v)
	}
	if v == math.Trunc(v) {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.2f", v)
}

func fmtBytes(v float64) string {
	const (
		kib = 1 << 10
		mib = 1 << 20
		gib = 1 << 30
	)
	switch {
	case math.Abs(v) >= gib:
		return fmt.Sprintf("%.2f GiB", v/gib)
	case math.Abs(v) >= mib:
		return fmt.Sprintf("%.1f MiB", v/mib)
	case math.Abs(v) >= kib:
		return fmt.Sprintf("%.1f KiB", v/kib)
	}
	return fmt.Sprintf("%.0f B", v)
}

func fmtPct(v float64) string {
	p := v * 100
	if p == math.Trunc(p) {
		return fmt.Sprintf("%.0f%%", p)
	}
	return fmt.Sprintf("%.1f%%", p)
}

func fmtSecs(v float64) string {
	if v == math.Trunc(v) {
		return fmt.Sprintf("%.0fs", v)
	}
	return fmt.Sprintf("%.2fs", v)
}

// niceTicks returns ~n round-valued ticks inside [lo, hi].
func niceTicks(lo, hi float64, n int) []float64 {
	if hi <= lo || n < 1 {
		return nil
	}
	raw := (hi - lo) / float64(n)
	mag := math.Pow(10, math.Floor(math.Log10(raw)))
	var step float64
	switch frac := raw / mag; {
	case frac <= 1:
		step = mag
	case frac <= 2:
		step = 2 * mag
	case frac <= 5:
		step = 5 * mag
	default:
		step = 10 * mag
	}
	var out []float64
	for t := math.Ceil(lo/step) * step; t <= hi+step*1e-9; t += step {
		out = append(out, t)
	}
	sort.Float64s(out)
	return out
}
