package slo

import (
	"strings"
	"testing"
)

// report builds a minimal report with the given objective statuses.
func mkReport(objs ...ObjectiveStatus) Report {
	return Report{SchemaVersion: SchemaVersion, Summary: Summary{Objectives: objs}}
}

func passObj(name string, direction string, finalValue float64) ObjectiveStatus {
	v := finalValue
	return ObjectiveStatus{Name: name, Direction: direction, Pass: true, FinalValue: &v}
}

func failObj(name string, episodes, breached int) ObjectiveStatus {
	return ObjectiveStatus{Name: name, Pass: false, Episodes: episodes, Breached: breached}
}

func entryFor(t *testing.T, res DiffResult, name string) DiffEntry {
	t.Helper()
	for _, e := range res.Entries {
		if e.Objective == name {
			return e
		}
	}
	t.Fatalf("no diff entry for %q in %+v", name, res.Entries)
	return DiffEntry{}
}

func TestDiffIdenticalPassesClean(t *testing.T) {
	a := mkReport(passObj("peak", AtMost, 100))
	res := Diff(a, a, 0.05)
	if res.Regressed {
		t.Fatalf("identical reports regressed: %+v", res)
	}
	if e := entryFor(t, res, "peak"); e.Verdict != VerdictOK {
		t.Fatalf("verdict = %q, want ok", e.Verdict)
	}
}

func TestDiffNewlyFailingIsRegression(t *testing.T) {
	res := Diff(mkReport(passObj("avail", AtLeast, 1)), mkReport(failObj("avail", 2, 5)), 0.05)
	e := entryFor(t, res, "avail")
	if e.Verdict != VerdictRegressed || !e.Regression || !res.Regressed {
		t.Fatalf("newly failing objective = %+v, want regression", e)
	}
	if !strings.Contains(e.Detail, "newly failing") {
		t.Fatalf("detail = %q", e.Detail)
	}
}

func TestDiffFailingBothOnlyRegressesWhenWorse(t *testing.T) {
	same := Diff(mkReport(failObj("x", 2, 4)), mkReport(failObj("x", 2, 4)), 0.05)
	if e := entryFor(t, same, "x"); e.Verdict != VerdictFailing || e.Regression {
		t.Fatalf("equally failing = %+v, want failing without regression", e)
	}
	worse := Diff(mkReport(failObj("x", 2, 4)), mkReport(failObj("x", 3, 4)), 0.05)
	if e := entryFor(t, worse, "x"); e.Verdict != VerdictRegressed || !e.Regression {
		t.Fatalf("failing and worse = %+v, want regression", e)
	}
}

func TestDiffImprovedAndRemovedAndAdded(t *testing.T) {
	res := Diff(
		mkReport(failObj("fixed", 1, 2), passObj("dropped", AtMost, 9)),
		mkReport(passObj("fixed", AtMost, 1), passObj("brand-new", AtMost, 3)),
		0.05)
	if e := entryFor(t, res, "fixed"); e.Verdict != VerdictImproved || e.Regression {
		t.Fatalf("fail→pass = %+v, want improved", e)
	}
	if e := entryFor(t, res, "brand-new"); e.Verdict != VerdictAdded || e.Regression {
		t.Fatalf("new passing objective = %+v, want added", e)
	}
	// A dropped objective is a gate failure: silently deleting a target is
	// how regressions hide.
	if e := entryFor(t, res, "dropped"); e.Verdict != VerdictRemoved || !e.Regression {
		t.Fatalf("dropped objective = %+v, want removed+regression", e)
	}
	if !res.Regressed {
		t.Fatal("removed objective must fail the gate")
	}
}

func TestDiffAddedFailingIsRegression(t *testing.T) {
	res := Diff(mkReport(), mkReport(failObj("new-bad", 1, 1)), 0.05)
	if e := entryFor(t, res, "new-bad"); !e.Regression || !res.Regressed {
		t.Fatalf("new failing objective = %+v, want regression", e)
	}
}

func TestDiffHeadroomErosion(t *testing.T) {
	// at_most: bigger is worse. +10% move exceeds a 5% tolerance.
	res := Diff(mkReport(passObj("peak", AtMost, 100)), mkReport(passObj("peak", AtMost, 110)), 0.05)
	if e := entryFor(t, res, "peak"); e.Verdict != VerdictRegressed || !e.Regression {
		t.Fatalf("10%% erosion at 5%% tolerance = %+v, want regression", e)
	}
	// +4% stays inside the tolerance.
	res = Diff(mkReport(passObj("peak", AtMost, 100)), mkReport(passObj("peak", AtMost, 104)), 0.05)
	if e := entryFor(t, res, "peak"); e.Verdict != VerdictOK {
		t.Fatalf("4%% erosion at 5%% tolerance = %+v, want ok", e)
	}
	// at_least: smaller is worse.
	res = Diff(mkReport(passObj("hit", AtLeast, 0.5)), mkReport(passObj("hit", AtLeast, 0.44)), 0.05)
	if e := entryFor(t, res, "hit"); e.Verdict != VerdictRegressed {
		t.Fatalf("at_least drop = %+v, want regression", e)
	}
	// Movement in the good direction reads as improvement, not regression.
	res = Diff(mkReport(passObj("peak", AtMost, 100)), mkReport(passObj("peak", AtMost, 80)), 0.05)
	if e := entryFor(t, res, "peak"); e.Verdict != VerdictImproved || e.Regression {
		t.Fatalf("20%% gain = %+v, want improved", e)
	}
}

func TestDiffUsesLastValueWhenNoFinal(t *testing.T) {
	last := func(name string, v float64) ObjectiveStatus {
		return ObjectiveStatus{Name: name, Direction: AtMost, Pass: true, LastValue: &v}
	}
	res := Diff(mkReport(last("w", 10)), mkReport(last("w", 20)), 0.05)
	if e := entryFor(t, res, "w"); e.Verdict != VerdictRegressed {
		t.Fatalf("windowed-value erosion = %+v, want regression", e)
	}
}
