package sim_test

import (
	"fmt"
	"time"

	"nvmcp/internal/sim"
)

// Example shows two processes interleaving deterministically under the
// virtual clock.
func Example() {
	env := sim.NewEnv()
	env.Go("worker", func(p *sim.Proc) {
		p.Sleep(2 * time.Second)
		fmt.Println("worker done at", p.Now())
	})
	env.Go("watcher", func(p *sim.Proc) {
		p.Sleep(time.Second)
		fmt.Println("watcher tick at", p.Now())
	})
	env.Run()
	fmt.Println("simulation ended at", env.Now())
	// Output:
	// watcher tick at 1s
	// worker done at 2s
	// simulation ended at 2s
}

// ExampleBarrier synchronizes parties the way coordinated checkpoints do.
func ExampleBarrier() {
	env := sim.NewEnv()
	b := sim.NewBarrier(env, 2)
	for i := 0; i < 2; i++ {
		delay := time.Duration(i+1) * time.Second
		env.Go("rank", func(p *sim.Proc) {
			p.Sleep(delay)
			b.Await(p)
			fmt.Println("released at", p.Now())
		})
	}
	env.Run()
	// Output:
	// released at 2s
	// released at 2s
}
