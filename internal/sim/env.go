// Package sim implements a deterministic discrete-event simulation kernel.
//
// An Env owns a virtual clock and an event queue. Simulated activities are
// either bare events (callbacks scheduled at a virtual time) or processes
// (Proc), which are goroutines that run one at a time under the scheduler's
// control, in the style of coroutine-based simulators such as SimPy. Because
// at most one goroutine — the scheduler or exactly one process — is runnable
// at any instant, simulations are fully deterministic: two runs with the same
// seeds produce identical event orders and identical virtual timings.
//
// Virtual time is expressed as time.Duration since the start of the
// simulation. It has no relation to wall-clock time; a simulated hour costs
// only the CPU time needed to execute its events.
package sim

import (
	"fmt"
	"time"
)

// Env is a simulation environment: a virtual clock plus a pending event
// queue. Create one with NewEnv, populate it with Go and Schedule, then call
// Run or RunUntil. An Env must not be shared across host goroutines except
// through the Proc mechanism itself.
//
// Events due at the current instant live in a FIFO ring (nowq) instead of
// the time-ordered ladder queue: the dominant scheduling pattern is an
// immediate wake (Sleep(0), wakeLater, handoffs), and a ring append/pop is
// O(1). Dispatch order is still strictly (time, seq) — the ring only ever
// holds events stamped at the current time with monotonically increasing
// sequence numbers, so comparing the ring head against the ladder's front
// reproduces the exact total order a single priority queue would produce.
type Env struct {
	now    time.Duration
	queue  ladder
	seq    uint64 // tie-breaker for events scheduled at the same instant
	parked chan struct{}
	cur    *Proc // process currently executing, nil in scheduler context
	fatal  any   // panic value captured from a process, re-raised by Run
	nprocs int   // live (started, not yet finished) processes
	brk    bool  // Break() requested: pause the run loop after this dispatch

	nowq     []*Event // FIFO of events due at the current instant
	nowqHead int
	free     []*Event // recycled internal (direct-wake) events
	nfired   uint64   // events dispatched over the Env's lifetime

	// arena chunk-allocates events (see alloc); arenaUsed indexes the
	// current block's next free slot.
	arena     []Event
	arenaUsed int

	// warnFn receives rare, deduplicated engine warnings (the obs layer
	// attaches the run's event bus here); negWarned latches the one-shot
	// negative-delay warning.
	warnFn    func(code, msg string)
	negWarned bool
}

// NewEnv returns an empty environment with the clock at zero.
func NewEnv() *Env {
	return &Env{parked: make(chan struct{})}
}

// Now returns the current virtual time.
func (e *Env) Now() time.Duration { return e.now }

// EventsFired returns the number of events dispatched so far — the
// denominator of the perf harness's events/sec throughput figure.
func (e *Env) EventsFired() uint64 { return e.nfired }

// Schedule registers fn to run at Now()+delay in scheduler context and
// returns a handle that may be used to cancel it. Events at equal times fire
// in scheduling order.
//
// Contract: delay must be non-negative — virtual time never runs backwards.
// A negative delay is clamped to zero (the event fires at the current
// instant, after events already due), and the first occurrence per Env
// raises a "negative-delay" engine warning through the warn hook so the
// modeling bug that produced it is visible on the run's event bus rather
// than silently absorbed.
func (e *Env) Schedule(delay time.Duration, fn func()) *Event {
	if delay < 0 {
		if !e.negWarned {
			e.negWarned = true
			if e.warnFn != nil {
				e.warnFn("negative-delay", fmt.Sprintf(
					"Schedule called with negative delay %v at t=%v; clamped to 0 (reported once)",
					delay, e.now))
			}
		}
		delay = 0
	}
	return e.At(e.now+delay, fn)
}

// SetWarnFunc installs the engine's warning sink: rare, deduplicated
// conditions (e.g. the first negative-delay Schedule) — not a general
// logging path. obs.New attaches the run's event bus here so warnings become
// typed events.
func (e *Env) SetWarnFunc(fn func(code, msg string)) { e.warnFn = fn }

// At registers fn to run at absolute virtual time t. If t is in the past it
// fires at the current time (but never before events already due).
func (e *Env) At(t time.Duration, fn func()) *Event {
	ev := e.alloc()
	ev.fn = fn
	e.enqueue(ev, t)
	return ev
}

// arenaBlock is how many events one arena chunk holds.
const arenaBlock = 256

// alloc hands out events from a chunked arena: a pointer bump in the common
// case, one block allocation per arenaBlock events — the zero-alloc dispatch
// path's counterpart to the direct-wake free list. Arena events are never
// recycled: callers may hold Cancel handles indefinitely, and reuse would
// let a stale handle cancel an unrelated occupant. (Pooled direct-wake
// events cycle through the generation-guarded free list instead.)
func (e *Env) alloc() *Event {
	if e.arenaUsed == len(e.arena) {
		e.arena = make([]Event, arenaBlock)
		e.arenaUsed = 0
	}
	ev := &e.arena[e.arenaUsed]
	e.arenaUsed++
	return ev
}

// enqueue stamps ev with (t, next seq) and routes it to the now-ring or the
// ladder. Events created through the public API come from the arena and are
// never recycled (callers may hold Cancel handles indefinitely); internal
// direct-wake events cycle through the free list.
func (e *Env) enqueue(ev *Event, t time.Duration) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	ev.t = t
	ev.seq = e.seq
	if t == e.now {
		e.nowq = append(e.nowq, ev)
		return
	}
	e.queue.push(ev)
}

// scheduleWake schedules a direct wake of p's wait seq with kind k at
// Now()+delay, using a recycled event when one is free. The returned
// generation pairs with cancelWake: once the event fires or is collected,
// its generation advances and stale cancels become no-ops, which is what
// makes recycling safe.
func (e *Env) scheduleWake(delay time.Duration, p *Proc, seq uint64, k wakeKind) (*Event, uint64) {
	if delay < 0 {
		delay = 0
	}
	var ev *Event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		ev.cancelled = false
	} else {
		ev = e.alloc()
		ev.pooled = true
	}
	ev.wakeP = p
	ev.wakeSeq = seq
	ev.wakeK = k
	e.enqueue(ev, e.now+delay)
	return ev, ev.gen
}

// cancelWake cancels a scheduleWake event if it has not already fired.
func (e *Env) cancelWake(ev *Event, gen uint64) {
	if ev.gen == gen {
		ev.cancelled = true
	}
}

// release returns a fired or cancelled internal event to the free list,
// advancing its generation so outstanding cancelWake handles expire.
func (e *Env) release(ev *Event) {
	if !ev.pooled {
		return
	}
	ev.gen++
	ev.wakeP = nil
	ev.fn = nil
	e.free = append(e.free, ev)
}

// Run executes events until the queue is empty, advancing the virtual clock.
// If a process panics with anything other than a kill, Run re-panics with
// that value so test failures surface at the call site.
func (e *Env) Run() {
	e.RunUntil(1<<62 - 1)
}

// pending returns the total number of queued events.
func (e *Env) pending() int {
	return e.queue.len() + len(e.nowq) - e.nowqHead
}

// Break pauses the run loop after the event currently dispatching completes,
// leaving the clock and every queued event in place; the next Run or
// RunUntil resumes exactly where the loop stopped. The sharded engine's
// cross-shard gates call this when they fill, handing control back to the
// coordinator between rendezvous rounds.
func (e *Env) Break() { e.brk = true }

// RunUntil executes events with timestamps <= horizon, then sets the clock to
// horizon if it advanced that far. Events beyond the horizon stay queued and
// a later RunUntil or Run picks them up.
func (e *Env) RunUntil(horizon time.Duration) {
	for {
		var next *Event
		fromRing := false
		if e.nowqHead < len(e.nowq) {
			next = e.nowq[e.nowqHead]
			fromRing = true
		}
		if top := e.queue.peek(); top != nil {
			if next == nil || top.t < next.t || (top.t == next.t && top.seq < next.seq) {
				next = top
				fromRing = false
			}
		}
		if next == nil {
			break
		}
		if next.t > horizon {
			if e.now < horizon {
				e.now = horizon
			}
			return
		}
		if fromRing {
			e.nowq[e.nowqHead] = nil
			e.nowqHead++
			if e.nowqHead == len(e.nowq) {
				e.nowq = e.nowq[:0]
				e.nowqHead = 0
			}
		} else {
			e.queue.pop()
		}
		if next.cancelled {
			e.release(next)
			continue
		}
		e.now = next.t
		e.nfired++
		if next.wakeP != nil {
			p, seq, k := next.wakeP, next.wakeSeq, next.wakeK
			e.release(next)
			e.wake(p, seq, k)
		} else {
			fn := next.fn
			e.release(next)
			fn()
		}
		if e.fatal != nil {
			f := e.fatal
			e.fatal = nil
			panic(f)
		}
		if e.brk {
			e.brk = false
			return
		}
	}
	if e.now < horizon && horizon < 1<<62-1 {
		e.now = horizon
	}
}

// Idle reports whether no events remain queued.
func (e *Env) Idle() bool { return e.pending() == 0 }

// LiveProcs returns the number of processes that have been started and have
// not yet finished or been killed.
func (e *Env) LiveProcs() int { return e.nprocs }

// Cur returns the currently executing process, or nil when called from
// scheduler (event callback) context.
func (e *Env) Cur() *Proc { return e.cur }

// switchTo transfers control to p, delivering wake kind k, and blocks until p
// parks again or exits. It must only be called from scheduler context.
func (e *Env) switchTo(p *Proc, k wakeKind) {
	prev := e.cur
	e.cur = p
	p.resume <- k
	<-e.parked
	e.cur = prev
}

// wake resumes process p if and only if it is still parked on the wait
// identified by seq. Stale wakes (the process moved on) are ignored, which is
// what makes timeouts and racing signals safe.
func (e *Env) wake(p *Proc, seq uint64, k wakeKind) {
	if p.state != procParked || p.waitSeq != seq {
		return
	}
	p.state = procRunning
	e.switchTo(p, k)
}

// wakeLater schedules a wake of p for wait seq at the current instant. Use
// this from process context, where a direct switchTo would deadlock the
// scheduler handoff.
func (e *Env) wakeLater(p *Proc, seq uint64, k wakeKind) {
	e.scheduleWake(0, p, seq, k)
}

// Event is a cancellable scheduled callback.
type Event struct {
	t         time.Duration
	seq       uint64
	fn        func()
	cancelled bool

	// Direct-wake payload: internal events (Sleep timers, deferred wakes)
	// dispatch a wake without allocating a closure, and recycle through the
	// Env's free list guarded by the generation counter.
	wakeP   *Proc
	wakeSeq uint64
	wakeK   wakeKind
	pooled  bool
	gen     uint64
}

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (ev *Event) Cancel() { ev.cancelled = true }

// Time returns the virtual time at which the event is due.
func (ev *Event) Time() time.Duration { return ev.t }

// String implements fmt.Stringer for debugging.
func (e *Env) String() string {
	return fmt.Sprintf("sim.Env{now=%v queued=%d procs=%d}", e.now, e.pending(), e.nprocs)
}
