// Package sim implements a deterministic discrete-event simulation kernel.
//
// An Env owns a virtual clock and an event queue. Simulated activities are
// either bare events (callbacks scheduled at a virtual time) or processes
// (Proc), which are goroutines that run one at a time under the scheduler's
// control, in the style of coroutine-based simulators such as SimPy. Because
// at most one goroutine — the scheduler or exactly one process — is runnable
// at any instant, simulations are fully deterministic: two runs with the same
// seeds produce identical event orders and identical virtual timings.
//
// Virtual time is expressed as time.Duration since the start of the
// simulation. It has no relation to wall-clock time; a simulated hour costs
// only the CPU time needed to execute its events.
package sim

import (
	"container/heap"
	"fmt"
	"time"
)

// Env is a simulation environment: a virtual clock plus a pending event
// queue. Create one with NewEnv, populate it with Go and Schedule, then call
// Run or RunUntil. An Env must not be shared across host goroutines except
// through the Proc mechanism itself.
type Env struct {
	now    time.Duration
	queue  eventHeap
	seq    uint64 // tie-breaker for events scheduled at the same instant
	parked chan struct{}
	cur    *Proc // process currently executing, nil in scheduler context
	fatal  any   // panic value captured from a process, re-raised by Run
	nprocs int   // live (started, not yet finished) processes
}

// NewEnv returns an empty environment with the clock at zero.
func NewEnv() *Env {
	return &Env{parked: make(chan struct{})}
}

// Now returns the current virtual time.
func (e *Env) Now() time.Duration { return e.now }

// Schedule registers fn to run at Now()+delay in scheduler context and
// returns a handle that may be used to cancel it. A negative delay is
// treated as zero. Events at equal times fire in scheduling order.
func (e *Env) Schedule(delay time.Duration, fn func()) *Event {
	if delay < 0 {
		delay = 0
	}
	return e.At(e.now+delay, fn)
}

// At registers fn to run at absolute virtual time t. If t is in the past it
// fires at the current time (but never before events already due).
func (e *Env) At(t time.Duration, fn func()) *Event {
	if t < e.now {
		t = e.now
	}
	e.seq++
	ev := &Event{t: t, seq: e.seq, fn: fn}
	heap.Push(&e.queue, ev)
	return ev
}

// Run executes events until the queue is empty, advancing the virtual clock.
// If a process panics with anything other than a kill, Run re-panics with
// that value so test failures surface at the call site.
func (e *Env) Run() {
	e.RunUntil(1<<62 - 1)
}

// RunUntil executes events with timestamps <= horizon, then sets the clock to
// horizon if it advanced that far. Events beyond the horizon stay queued and
// a later RunUntil or Run picks them up.
func (e *Env) RunUntil(horizon time.Duration) {
	for e.queue.Len() > 0 {
		next := e.queue[0]
		if next.t > horizon {
			if e.now < horizon {
				e.now = horizon
			}
			return
		}
		heap.Pop(&e.queue)
		if next.cancelled {
			continue
		}
		e.now = next.t
		next.fn()
		if e.fatal != nil {
			f := e.fatal
			e.fatal = nil
			panic(f)
		}
	}
	if e.now < horizon && horizon < 1<<62-1 {
		e.now = horizon
	}
}

// Idle reports whether no events remain queued.
func (e *Env) Idle() bool { return e.queue.Len() == 0 }

// LiveProcs returns the number of processes that have been started and have
// not yet finished or been killed.
func (e *Env) LiveProcs() int { return e.nprocs }

// Cur returns the currently executing process, or nil when called from
// scheduler (event callback) context.
func (e *Env) Cur() *Proc { return e.cur }

// switchTo transfers control to p, delivering wake kind k, and blocks until p
// parks again or exits. It must only be called from scheduler context.
func (e *Env) switchTo(p *Proc, k wakeKind) {
	prev := e.cur
	e.cur = p
	p.resume <- k
	<-e.parked
	e.cur = prev
}

// wake resumes process p if and only if it is still parked on the wait
// identified by seq. Stale wakes (the process moved on) are ignored, which is
// what makes timeouts and racing signals safe.
func (e *Env) wake(p *Proc, seq uint64, k wakeKind) {
	if p.state != procParked || p.waitSeq != seq {
		return
	}
	p.state = procRunning
	e.switchTo(p, k)
}

// wakeLater schedules a wake of p for wait seq at the current instant. Use
// this from process context, where a direct switchTo would deadlock the
// scheduler handoff.
func (e *Env) wakeLater(p *Proc, seq uint64, k wakeKind) {
	e.Schedule(0, func() { e.wake(p, seq, k) })
}

// Event is a cancellable scheduled callback.
type Event struct {
	t         time.Duration
	seq       uint64
	fn        func()
	cancelled bool
	index     int
}

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (ev *Event) Cancel() { ev.cancelled = true }

// Time returns the virtual time at which the event is due.
func (ev *Event) Time() time.Duration { return ev.t }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// String implements fmt.Stringer for debugging.
func (e *Env) String() string {
	return fmt.Sprintf("sim.Env{now=%v queued=%d procs=%d}", e.now, e.queue.Len(), e.nprocs)
}
