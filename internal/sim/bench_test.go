package sim

import (
	"testing"
	"time"
)

// BenchmarkEventThroughput measures raw event scheduling/dispatch rate —
// the floor under every simulation in the repository.
func BenchmarkEventThroughput(b *testing.B) {
	e := NewEnv()
	count := 0
	var self func()
	self = func() {
		count++
		if count < b.N {
			e.Schedule(time.Microsecond, self)
		}
	}
	b.ResetTimer()
	e.Schedule(0, self)
	e.Run()
}

// BenchmarkProcSwitch measures coroutine park/wake round trips.
func BenchmarkProcSwitch(b *testing.B) {
	e := NewEnv()
	e.Go("sleeper", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(time.Microsecond)
		}
	})
	b.ResetTimer()
	e.Run()
}

// BenchmarkMutexHandoff measures contended FIFO lock handoffs between two
// processes.
func BenchmarkMutexHandoff(b *testing.B) {
	e := NewEnv()
	m := NewMutex(e)
	worker := func(p *Proc) {
		for i := 0; i < b.N/2; i++ {
			m.Lock(p)
			p.Sleep(time.Nanosecond)
			m.Unlock(p)
		}
	}
	e.Go("a", worker)
	e.Go("b", worker)
	b.ResetTimer()
	e.Run()
}
