package sim

import (
	"fmt"
	"testing"
	"time"
)

func TestScheduleOrdering(t *testing.T) {
	e := NewEnv()
	var got []int
	e.Schedule(20*time.Millisecond, func() { got = append(got, 3) })
	e.Schedule(10*time.Millisecond, func() { got = append(got, 1) })
	e.Schedule(10*time.Millisecond, func() { got = append(got, 2) }) // same instant: FIFO
	e.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != 20*time.Millisecond {
		t.Fatalf("Now() = %v, want 20ms", e.Now())
	}
}

func TestNegativeDelayClampsToNow(t *testing.T) {
	e := NewEnv()
	fired := time.Duration(-1)
	e.Schedule(5*time.Millisecond, func() {
		e.Schedule(-3*time.Millisecond, func() { fired = e.Now() })
	})
	e.Run()
	if fired != 5*time.Millisecond {
		t.Fatalf("negative-delay event fired at %v, want 5ms", fired)
	}
}

func TestAtInThePastFiresNow(t *testing.T) {
	e := NewEnv()
	fired := time.Duration(-1)
	e.Schedule(10*time.Millisecond, func() {
		e.At(2*time.Millisecond, func() { fired = e.Now() })
	})
	e.Run()
	if fired != 10*time.Millisecond {
		t.Fatalf("past event fired at %v, want 10ms", fired)
	}
}

func TestEventCancel(t *testing.T) {
	e := NewEnv()
	fired := false
	ev := e.Schedule(time.Second, func() { fired = true })
	ev.Cancel()
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestRunUntilHorizon(t *testing.T) {
	e := NewEnv()
	var fired []time.Duration
	for _, d := range []time.Duration{time.Second, 2 * time.Second, 3 * time.Second} {
		e.Schedule(d, func() { fired = append(fired, d) })
	}
	e.RunUntil(2 * time.Second)
	if len(fired) != 2 {
		t.Fatalf("fired %d events before horizon, want 2", len(fired))
	}
	if e.Now() != 2*time.Second {
		t.Fatalf("Now() = %v, want 2s", e.Now())
	}
	e.Run()
	if len(fired) != 3 {
		t.Fatalf("fired %d events total, want 3", len(fired))
	}
}

func TestRunUntilAdvancesClockWithoutEvents(t *testing.T) {
	e := NewEnv()
	e.RunUntil(time.Minute)
	if e.Now() != time.Minute {
		t.Fatalf("Now() = %v, want 1m", e.Now())
	}
}

func TestProcSleepAdvancesVirtualTime(t *testing.T) {
	e := NewEnv()
	var end time.Duration
	e.Go("sleeper", func(p *Proc) {
		p.Sleep(40 * time.Millisecond)
		p.Sleep(2 * time.Millisecond)
		end = p.Now()
	})
	e.Run()
	if end != 42*time.Millisecond {
		t.Fatalf("proc ended at %v, want 42ms", end)
	}
}

func TestProcsInterleaveDeterministically(t *testing.T) {
	run := func() string {
		e := NewEnv()
		out := ""
		for i := 0; i < 4; i++ {
			e.Go(fmt.Sprintf("p%d", i), func(p *Proc) {
				for j := 0; j < 3; j++ {
					p.Sleep(time.Duration(i+1) * time.Millisecond)
					out += fmt.Sprintf("%d", i)
				}
			})
		}
		e.Run()
		return out
	}
	first := run()
	for i := 0; i < 10; i++ {
		if got := run(); got != first {
			t.Fatalf("run %d produced %q, first run produced %q", i, got, first)
		}
	}
}

func TestProcPanicPropagates(t *testing.T) {
	e := NewEnv()
	e.Go("bad", func(p *Proc) { panic("boom") })
	defer func() {
		if r := recover(); r != "boom" {
			t.Fatalf("recovered %v, want boom", r)
		}
	}()
	e.Run()
	t.Fatal("Run returned without panicking")
}

func TestKillUnwindsParkedProc(t *testing.T) {
	e := NewEnv()
	cleaned := false
	victim := e.Go("victim", func(p *Proc) {
		defer func() { cleaned = true }()
		p.Sleep(time.Hour)
		t.Error("victim survived its kill")
	})
	e.Go("killer", func(p *Proc) {
		p.Sleep(time.Millisecond)
		victim.Kill()
	})
	e.Run()
	if !cleaned {
		t.Fatal("deferred cleanup did not run on kill")
	}
	if !victim.Done() || !victim.Killed() {
		t.Fatalf("victim state: done=%v killed=%v", victim.Done(), victim.Killed())
	}
	if e.Now() >= time.Hour {
		t.Fatalf("kill did not cancel the sleep; Now()=%v", e.Now())
	}
}

func TestKillBeforeStart(t *testing.T) {
	e := NewEnv()
	ran := false
	p := e.Go("never", func(p *Proc) { ran = true })
	p.Kill()
	e.Run()
	if ran {
		t.Fatal("killed-before-start process ran")
	}
	if !p.Done() {
		t.Fatal("killed-before-start process not marked done")
	}
}

func TestKillSelf(t *testing.T) {
	e := NewEnv()
	after := false
	p := e.Go("suicidal", func(p *Proc) {
		p.KillSelf()
		after = true
	})
	e.Run()
	if after {
		t.Fatal("code after KillSelf ran")
	}
	if !p.Done() || !p.Killed() {
		t.Fatal("KillSelf did not finish the process")
	}
}

func TestJoinWaitsForExit(t *testing.T) {
	e := NewEnv()
	worker := e.Go("worker", func(p *Proc) { p.Sleep(30 * time.Millisecond) })
	var joinedAt time.Duration
	e.Go("joiner", func(p *Proc) {
		p.Join(worker)
		joinedAt = p.Now()
	})
	e.Run()
	if joinedAt != 30*time.Millisecond {
		t.Fatalf("join returned at %v, want 30ms", joinedAt)
	}
}

func TestJoinDoneProcReturnsImmediately(t *testing.T) {
	e := NewEnv()
	worker := e.Go("worker", func(p *Proc) {})
	var joinedAt time.Duration = -1
	e.Go("joiner", func(p *Proc) {
		p.Sleep(time.Millisecond)
		p.Join(worker)
		joinedAt = p.Now()
	})
	e.Run()
	if joinedAt != time.Millisecond {
		t.Fatalf("join of done proc returned at %v, want 1ms", joinedAt)
	}
}

func TestJoinKilledProc(t *testing.T) {
	e := NewEnv()
	worker := e.Go("worker", func(p *Proc) { p.Sleep(time.Hour) })
	var joinedAt time.Duration = -1
	e.Go("joiner", func(p *Proc) { p.Join(worker); joinedAt = p.Now() })
	e.Go("killer", func(p *Proc) { p.Sleep(time.Second); worker.Kill() })
	e.Run()
	if joinedAt != time.Second {
		t.Fatalf("join of killed proc returned at %v, want 1s", joinedAt)
	}
}

func TestLiveProcsAccounting(t *testing.T) {
	e := NewEnv()
	if e.LiveProcs() != 1-1 {
		t.Fatalf("LiveProcs = %d at start", e.LiveProcs())
	}
	e.Go("a", func(p *Proc) { p.Sleep(time.Second) })
	e.Go("b", func(p *Proc) { p.Sleep(2 * time.Second) })
	if e.LiveProcs() != 2 {
		t.Fatalf("LiveProcs = %d after spawn, want 2", e.LiveProcs())
	}
	e.Run()
	if e.LiveProcs() != 0 {
		t.Fatalf("LiveProcs = %d after Run, want 0", e.LiveProcs())
	}
}

func TestYieldRunsOtherEventsAtSameInstant(t *testing.T) {
	e := NewEnv()
	var order []string
	e.Go("a", func(p *Proc) {
		order = append(order, "a1")
		p.Yield()
		order = append(order, "a2")
	})
	e.Go("b", func(p *Proc) { order = append(order, "b") })
	e.Run()
	want := []string{"a1", "b", "a2"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestRunUntilResumesProcsMidSleep(t *testing.T) {
	e := NewEnv()
	var end time.Duration
	e.Go("sleeper", func(p *Proc) {
		p.Sleep(10 * time.Second)
		end = p.Now()
	})
	e.RunUntil(3 * time.Second)
	if e.Now() != 3*time.Second || end != 0 {
		t.Fatalf("mid-run state: now=%v end=%v", e.Now(), end)
	}
	e.Run() // picks the sleeper back up
	if end != 10*time.Second {
		t.Fatalf("sleeper ended at %v, want 10s", end)
	}
}

func TestKillDuringBarrierReleaseWave(t *testing.T) {
	// A party killed at the same instant the barrier releases must not
	// corrupt the release or wedge the other parties.
	e := NewEnv()
	b := NewBarrier(e, 3)
	released := 0
	var victim *Proc
	for i := 0; i < 3; i++ {
		p := e.Go("party", func(p *Proc) {
			p.Sleep(time.Duration(i) * time.Millisecond)
			b.Await(p)
			released++
			p.Sleep(time.Hour)
		})
		if i == 0 {
			victim = p
		}
	}
	e.Go("killer", func(p *Proc) {
		p.Sleep(2 * time.Millisecond) // the instant the last party arrives
		victim.Kill()
	})
	e.RunUntil(time.Second)
	if released < 2 {
		t.Fatalf("released = %d, want at least the two survivors", released)
	}
}

func TestDoubleKillIsIdempotent(t *testing.T) {
	e := NewEnv()
	p := e.Go("victim", func(p *Proc) { p.Sleep(time.Hour) })
	e.Go("killer", func(q *Proc) {
		q.Sleep(time.Millisecond)
		p.Kill()
		p.Kill() // second kill: no-op
	})
	e.Run()
	if !p.Done() {
		t.Fatal("victim not done")
	}
}

func TestCompletionCompleteFromSchedulerContext(t *testing.T) {
	e := NewEnv()
	c := NewCompletion(e)
	var at time.Duration
	e.Go("waiter", func(p *Proc) {
		c.Await(p)
		at = p.Now()
	})
	e.Schedule(7*time.Millisecond, c.Complete) // scheduler-context completion
	e.Run()
	if at != 7*time.Millisecond {
		t.Fatalf("released at %v, want 7ms", at)
	}
}

func TestNestedSpawn(t *testing.T) {
	e := NewEnv()
	var depth3 time.Duration
	e.Go("outer", func(p *Proc) {
		p.Sleep(time.Millisecond)
		p.Env().Go("mid", func(p *Proc) {
			p.Sleep(time.Millisecond)
			p.Env().Go("inner", func(p *Proc) {
				p.Sleep(time.Millisecond)
				depth3 = p.Now()
			})
		})
	})
	e.Run()
	if depth3 != 3*time.Millisecond {
		t.Fatalf("inner proc finished at %v, want 3ms", depth3)
	}
}
