package sim

import "time"

// ---------------------------------------------------------------------------
// Completion — a one-shot latch.

// Completion is a one-shot latch: processes Await it, and a single Complete
// (from process or scheduler context) releases all current and future
// awaiters. The zero value is not usable; create with NewCompletion.
type Completion struct {
	env  *Env
	done bool
	ws   []waiter
}

// NewCompletion returns an incomplete latch bound to e.
func NewCompletion(e *Env) *Completion { return &Completion{env: e} }

// Completed reports whether Complete has been called.
func (c *Completion) Completed() bool { return c.done }

// Complete releases all awaiters. Subsequent Await calls return immediately.
// Calling Complete twice is a no-op.
func (c *Completion) Complete() {
	if c.done {
		return
	}
	c.done = true
	ws := c.ws
	c.ws = nil
	for _, w := range ws {
		c.env.wakeLater(w.p, w.seq, wakeSignal)
	}
}

// Await blocks p until the latch completes.
func (c *Completion) Await(p *Proc) {
	if c.done {
		return
	}
	seq := p.prepark()
	c.ws = append(c.ws, waiter{p, seq})
	defer c.removeWaiter(p, seq) // no-op if Complete already cleared the list
	p.park()
}

// AwaitTimeout blocks p until the latch completes or d elapses, reporting
// whether the latch completed.
func (c *Completion) AwaitTimeout(p *Proc, d time.Duration) bool {
	if c.done {
		return true
	}
	if d <= 0 {
		return false
	}
	seq := p.prepark()
	c.ws = append(c.ws, waiter{p, seq})
	defer c.removeWaiter(p, seq)
	timer, gen := c.env.scheduleWake(d, p, seq, wakeTimer)
	defer c.env.cancelWake(timer, gen)
	return p.park() == wakeSignal || c.done
}

func (c *Completion) removeWaiter(p *Proc, seq uint64) {
	for i, w := range c.ws {
		if w.p == p && w.seq == seq {
			c.ws = append(c.ws[:i], c.ws[i+1:]...)
			return
		}
	}
}

// ---------------------------------------------------------------------------
// Signal — a reusable broadcast condition.

// Signal is a reusable broadcast: Wait parks until the next Broadcast. Unlike
// Completion it does not latch — waiters arriving after a Broadcast wait for
// the following one.
type Signal struct {
	env *Env
	ws  []waiter
}

// NewSignal returns a Signal bound to e.
func NewSignal(e *Env) *Signal { return &Signal{env: e} }

// Waiters returns the number of processes currently parked on the signal.
func (s *Signal) Waiters() int { return len(s.ws) }

// Broadcast wakes every process currently waiting.
func (s *Signal) Broadcast() {
	ws := s.ws
	s.ws = nil
	for _, w := range ws {
		s.env.wakeLater(w.p, w.seq, wakeSignal)
	}
}

// Wait parks p until the next Broadcast.
func (s *Signal) Wait(p *Proc) {
	seq := p.prepark()
	s.ws = append(s.ws, waiter{p, seq})
	defer s.removeWaiter(p, seq)
	p.park()
}

// WaitTimeout parks p until the next Broadcast or until d elapses, reporting
// whether a Broadcast arrived.
func (s *Signal) WaitTimeout(p *Proc, d time.Duration) bool {
	if d <= 0 {
		return false
	}
	seq := p.prepark()
	s.ws = append(s.ws, waiter{p, seq})
	defer s.removeWaiter(p, seq)
	timer, gen := s.env.scheduleWake(d, p, seq, wakeTimer)
	defer s.env.cancelWake(timer, gen)
	return p.park() == wakeSignal
}

func (s *Signal) removeWaiter(p *Proc, seq uint64) {
	for i, w := range s.ws {
		if w.p == p && w.seq == seq {
			s.ws = append(s.ws[:i], s.ws[i+1:]...)
			return
		}
	}
}

// ---------------------------------------------------------------------------
// Mutex — FIFO mutual exclusion with direct handoff.

// Mutex provides FIFO mutual exclusion between processes. Unlock hands the
// lock directly to the longest-waiting process, so no barging is possible.
// A process killed while queued (or just after being handed the lock)
// releases cleanly via deferred cleanup.
type Mutex struct {
	env   *Env
	owner *Proc
	q     []waiter
	// holds and waitTime feed contention accounting (e.g. the ramdisk
	// baseline's kernel-lock statistics).
	Holds    int64
	WaitTime time.Duration
}

// NewMutex returns an unlocked mutex bound to e.
func NewMutex(e *Env) *Mutex { return &Mutex{env: e} }

// Locked reports whether some process holds the mutex.
func (m *Mutex) Locked() bool { return m.owner != nil }

// Lock blocks p until it owns the mutex.
func (m *Mutex) Lock(p *Proc) {
	m.Holds++
	if m.owner == nil {
		m.owner = p
		return
	}
	start := m.env.now
	seq := p.prepark()
	m.q = append(m.q, waiter{p, seq})
	acquired := false
	defer func() {
		m.WaitTime += m.env.now - start
		if acquired {
			return
		}
		// Unwinding under kill: leave the queue, and if the lock was
		// already handed to us, pass it on.
		for i, w := range m.q {
			if w.p == p {
				m.q = append(m.q[:i], m.q[i+1:]...)
				break
			}
		}
		if m.owner == p {
			m.handoff()
		}
	}()
	p.park()
	acquired = true
}

// Unlock releases the mutex, handing it to the next queued process if any.
// It panics if p is not the owner.
func (m *Mutex) Unlock(p *Proc) {
	if m.owner != p {
		panic("sim: Mutex.Unlock by non-owner " + p.name)
	}
	m.handoff()
}

func (m *Mutex) handoff() {
	if len(m.q) == 0 {
		m.owner = nil
		return
	}
	next := m.q[0]
	m.q = m.q[1:]
	m.owner = next.p
	m.env.wakeLater(next.p, next.seq, wakeSignal)
}

// ---------------------------------------------------------------------------
// Semaphore — counting semaphore with FIFO wakeups.

// Semaphore is a counting semaphore with FIFO wakeups. Tokens released while
// processes wait are handed directly to the head waiter.
type Semaphore struct {
	env    *Env
	tokens int
	q      []waiter
	// granted marks waiters whose token was handed off while parked, so a
	// kill unwind can return it.
	granted map[*Proc]bool
}

// NewSemaphore returns a semaphore holding tokens initial permits.
func NewSemaphore(e *Env, tokens int) *Semaphore {
	return &Semaphore{env: e, tokens: tokens, granted: make(map[*Proc]bool)}
}

// Tokens returns the number of free permits.
func (s *Semaphore) Tokens() int { return s.tokens }

// Acquire blocks p until a permit is available and takes it.
func (s *Semaphore) Acquire(p *Proc) {
	if s.tokens > 0 && len(s.q) == 0 {
		s.tokens--
		return
	}
	seq := p.prepark()
	s.q = append(s.q, waiter{p, seq})
	acquired := false
	defer func() {
		if acquired {
			return
		}
		for i, w := range s.q {
			if w.p == p {
				s.q = append(s.q[:i], s.q[i+1:]...)
				break
			}
		}
		if s.granted[p] {
			delete(s.granted, p)
			s.Release()
		}
	}()
	p.park()
	delete(s.granted, p)
	acquired = true
}

// TryAcquire takes a permit if one is immediately available.
func (s *Semaphore) TryAcquire() bool {
	if s.tokens > 0 && len(s.q) == 0 {
		s.tokens--
		return true
	}
	return false
}

// Release returns a permit, waking the head waiter if any.
func (s *Semaphore) Release() {
	if len(s.q) > 0 {
		next := s.q[0]
		s.q = s.q[1:]
		s.granted[next.p] = true
		s.env.wakeLater(next.p, next.seq, wakeSignal)
		return
	}
	s.tokens++
}

// ---------------------------------------------------------------------------
// Barrier — cyclic rendezvous for n parties.

// Barrier is a cyclic barrier for a fixed number of parties, used to model
// coordinated (all-ranks) checkpoint entry. The last arriving process
// releases the rest and the barrier resets for the next cycle.
type Barrier struct {
	env     *Env
	parties int
	arrived int
	gen     uint64
	ws      []waiter
	// Cycles counts completed generations.
	Cycles int64
}

// NewBarrier returns a barrier for parties processes. parties must be >= 1.
func NewBarrier(e *Env, parties int) *Barrier {
	if parties < 1 {
		panic("sim: barrier parties must be >= 1")
	}
	return &Barrier{env: e, parties: parties}
}

// Parties returns the configured party count.
func (b *Barrier) Parties() int { return b.parties }

// Arrived returns how many parties are waiting in the current generation.
func (b *Barrier) Arrived() int { return b.arrived }

// Await blocks p until all parties of the current generation have arrived.
func (b *Barrier) Await(p *Proc) {
	b.arrived++
	if b.arrived == b.parties {
		b.arrived = 0
		b.gen++
		b.Cycles++
		ws := b.ws
		b.ws = nil
		for _, w := range ws {
			b.env.wakeLater(w.p, w.seq, wakeSignal)
		}
		return
	}
	seq := p.prepark()
	b.ws = append(b.ws, waiter{p, seq})
	released := false
	defer func() {
		if released {
			return
		}
		// Kill unwind: retract our arrival so the cycle can still complete.
		b.arrived--
		for i, w := range b.ws {
			if w.p == p {
				b.ws = append(b.ws[:i], b.ws[i+1:]...)
				return
			}
		}
	}()
	p.park()
	released = true
}

// ---------------------------------------------------------------------------
// Queue — an unbounded FIFO mailbox.

// Queue is an unbounded FIFO mailbox carrying values of type T between
// processes. Put never blocks; Get blocks until a value is available.
type Queue[T any] struct {
	env   *Env
	items []T
	ws    []waiter
}

// NewQueue returns an empty queue bound to e.
func NewQueue[T any](e *Env) *Queue[T] { return &Queue[T]{env: e} }

// Len returns the number of buffered items.
func (q *Queue[T]) Len() int { return len(q.items) }

// Put appends v and wakes one waiting consumer, if any. Callable from
// process or scheduler context.
func (q *Queue[T]) Put(v T) {
	q.items = append(q.items, v)
	if len(q.ws) > 0 {
		next := q.ws[0]
		q.ws = q.ws[1:]
		q.env.wakeLater(next.p, next.seq, wakeSignal)
	}
}

// TryGet pops the head item if one is buffered.
func (q *Queue[T]) TryGet() (T, bool) {
	var zero T
	if len(q.items) == 0 {
		return zero, false
	}
	v := q.items[0]
	q.items = q.items[1:]
	return v, true
}

// Get blocks p until an item is available and pops it.
func (q *Queue[T]) Get(p *Proc) T {
	for {
		if v, ok := q.TryGet(); ok {
			return v
		}
		seq := p.prepark()
		q.ws = append(q.ws, waiter{p, seq})
		func() {
			defer q.removeWaiter(p, seq)
			p.park()
		}()
	}
}

// GetTimeout blocks p until an item is available or d elapses.
func (q *Queue[T]) GetTimeout(p *Proc, d time.Duration) (T, bool) {
	var zero T
	deadline := q.env.now + d
	for {
		if v, ok := q.TryGet(); ok {
			return v, true
		}
		remain := deadline - q.env.now
		if remain <= 0 {
			return zero, false
		}
		seq := p.prepark()
		q.ws = append(q.ws, waiter{p, seq})
		var kind wakeKind
		func() {
			defer q.removeWaiter(p, seq)
			timer, gen := q.env.scheduleWake(remain, p, seq, wakeTimer)
			defer q.env.cancelWake(timer, gen)
			kind = p.park()
		}()
		if kind == wakeTimer {
			if v, ok := q.TryGet(); ok {
				return v, true
			}
			return zero, false
		}
	}
}

func (q *Queue[T]) removeWaiter(p *Proc, seq uint64) {
	for i, w := range q.ws {
		if w.p == p && w.seq == seq {
			q.ws = append(q.ws[:i], q.ws[i+1:]...)
			return
		}
	}
}
