package sim

import (
	"testing"
	"time"
)

func TestCompletionReleasesAllWaiters(t *testing.T) {
	e := NewEnv()
	c := NewCompletion(e)
	var done []time.Duration
	for i := 0; i < 3; i++ {
		e.Go("w", func(p *Proc) {
			c.Await(p)
			done = append(done, p.Now())
		})
	}
	e.Go("completer", func(p *Proc) {
		p.Sleep(50 * time.Millisecond)
		c.Complete()
	})
	e.Run()
	if len(done) != 3 {
		t.Fatalf("%d waiters released, want 3", len(done))
	}
	for _, d := range done {
		if d != 50*time.Millisecond {
			t.Fatalf("waiter released at %v, want 50ms", d)
		}
	}
}

func TestCompletionAwaitAfterComplete(t *testing.T) {
	e := NewEnv()
	c := NewCompletion(e)
	c.Complete()
	c.Complete() // idempotent
	var at time.Duration = -1
	e.Go("late", func(p *Proc) {
		c.Await(p)
		at = p.Now()
	})
	e.Run()
	if at != 0 {
		t.Fatalf("late awaiter blocked; released at %v", at)
	}
}

func TestCompletionAwaitTimeout(t *testing.T) {
	e := NewEnv()
	c := NewCompletion(e)
	var hit, miss bool
	e.Go("miss", func(p *Proc) { miss = c.AwaitTimeout(p, 10*time.Millisecond) })
	e.Go("hit", func(p *Proc) { hit = c.AwaitTimeout(p, 100*time.Millisecond) })
	e.Go("completer", func(p *Proc) {
		p.Sleep(20 * time.Millisecond)
		c.Complete()
	})
	e.Run()
	if miss {
		t.Fatal("10ms waiter reported completion before Complete")
	}
	if !hit {
		t.Fatal("100ms waiter missed the completion")
	}
}

func TestSignalBroadcastIsNotLatched(t *testing.T) {
	e := NewEnv()
	s := NewSignal(e)
	wakes := 0
	e.Go("waiter", func(p *Proc) {
		s.Wait(p)
		wakes++
		s.Wait(p) // must wait for a second broadcast
		wakes++
	})
	e.Go("caster", func(p *Proc) {
		p.Sleep(time.Millisecond)
		s.Broadcast()
		p.Sleep(time.Millisecond)
		s.Broadcast()
	})
	e.Run()
	if wakes != 2 {
		t.Fatalf("wakes = %d, want 2", wakes)
	}
}

func TestSignalWaitTimeout(t *testing.T) {
	e := NewEnv()
	s := NewSignal(e)
	var got bool
	var at time.Duration
	e.Go("waiter", func(p *Proc) {
		got = s.WaitTimeout(p, 5*time.Millisecond)
		at = p.Now()
	})
	e.Run()
	if got {
		t.Fatal("WaitTimeout reported signal with no broadcast")
	}
	if at != 5*time.Millisecond {
		t.Fatalf("timeout at %v, want 5ms", at)
	}
	if s.Waiters() != 0 {
		t.Fatalf("stale waiter left on signal: %d", s.Waiters())
	}
}

func TestSignalTimeoutThenLaterBroadcastDoesNotDoubleWake(t *testing.T) {
	e := NewEnv()
	s := NewSignal(e)
	wakes := 0
	e.Go("waiter", func(p *Proc) {
		s.WaitTimeout(p, time.Millisecond)
		wakes++
		p.Sleep(time.Hour) // parked elsewhere when the broadcast fires
	})
	e.Go("caster", func(p *Proc) {
		p.Sleep(10 * time.Millisecond)
		s.Broadcast()
	})
	e.Run()
	if wakes != 1 {
		t.Fatalf("wakes = %d, want 1", wakes)
	}
}

func TestMutexMutualExclusionAndFIFO(t *testing.T) {
	e := NewEnv()
	m := NewMutex(e)
	var order []string
	work := func(name string, startDelay time.Duration) {
		e.Go(name, func(p *Proc) {
			p.Sleep(startDelay)
			m.Lock(p)
			order = append(order, name)
			p.Sleep(10 * time.Millisecond)
			m.Unlock(p)
		})
	}
	work("a", 0)
	work("b", time.Millisecond)
	work("c", 2*time.Millisecond)
	e.Run()
	want := []string{"a", "b", "c"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want FIFO %v", order, want)
		}
	}
	if m.Locked() {
		t.Fatal("mutex still locked after Run")
	}
	if m.Holds != 3 {
		t.Fatalf("Holds = %d, want 3", m.Holds)
	}
	// a holds 0-10ms; b waits 1-10 (9ms); c waits 2-20 (18ms).
	if m.WaitTime != 27*time.Millisecond {
		t.Fatalf("WaitTime = %v, want 27ms", m.WaitTime)
	}
}

func TestMutexUnlockByNonOwnerPanics(t *testing.T) {
	e := NewEnv()
	m := NewMutex(e)
	e.Go("a", func(p *Proc) { m.Lock(p); p.Sleep(time.Second); m.Unlock(p) })
	e.Go("b", func(p *Proc) {
		defer func() {
			if recover() == nil {
				t.Error("Unlock by non-owner did not panic")
			}
		}()
		m.Unlock(p)
	})
	e.Run()
}

func TestMutexKilledWaiterReleases(t *testing.T) {
	e := NewEnv()
	m := NewMutex(e)
	e.Go("holder", func(p *Proc) {
		m.Lock(p)
		p.Sleep(10 * time.Millisecond)
		m.Unlock(p)
	})
	victim := e.Go("victim", func(p *Proc) {
		p.Sleep(time.Millisecond)
		m.Lock(p)
		t.Error("victim acquired the lock")
	})
	gotLock := false
	e.Go("survivor", func(p *Proc) {
		p.Sleep(2 * time.Millisecond)
		m.Lock(p)
		gotLock = true
		m.Unlock(p)
	})
	e.Go("killer", func(p *Proc) {
		p.Sleep(5 * time.Millisecond)
		victim.Kill()
	})
	e.Run()
	if !gotLock {
		t.Fatal("survivor never got the lock after victim was killed")
	}
	if m.Locked() {
		t.Fatal("mutex leaked")
	}
}

func TestSemaphoreLimitsConcurrency(t *testing.T) {
	e := NewEnv()
	s := NewSemaphore(e, 2)
	inside, peak := 0, 0
	for i := 0; i < 5; i++ {
		e.Go("w", func(p *Proc) {
			s.Acquire(p)
			inside++
			if inside > peak {
				peak = inside
			}
			p.Sleep(10 * time.Millisecond)
			inside--
			s.Release()
		})
	}
	e.Run()
	if peak != 2 {
		t.Fatalf("peak concurrency = %d, want 2", peak)
	}
	if s.Tokens() != 2 {
		t.Fatalf("tokens = %d after Run, want 2", s.Tokens())
	}
	// 5 workers, 2 at a time, 10ms each => 30ms.
	if e.Now() != 30*time.Millisecond {
		t.Fatalf("finished at %v, want 30ms", e.Now())
	}
}

func TestSemaphoreTryAcquire(t *testing.T) {
	e := NewEnv()
	s := NewSemaphore(e, 1)
	if !s.TryAcquire() {
		t.Fatal("TryAcquire failed with a free token")
	}
	if s.TryAcquire() {
		t.Fatal("TryAcquire succeeded with no token")
	}
	s.Release()
	if s.Tokens() != 1 {
		t.Fatalf("tokens = %d, want 1", s.Tokens())
	}
}

func TestSemaphoreKilledWaiterReturnsGrantedToken(t *testing.T) {
	e := NewEnv()
	s := NewSemaphore(e, 1)
	e.Go("holder", func(p *Proc) {
		s.Acquire(p)
		p.Sleep(10 * time.Millisecond)
		s.Release()
	})
	victim := e.Go("victim", func(p *Proc) {
		p.Sleep(time.Millisecond)
		s.Acquire(p)
		t.Error("victim acquired")
	})
	// Kill the victim at the same instant its token is handed over.
	e.Go("killer", func(p *Proc) {
		p.Sleep(10 * time.Millisecond)
		victim.Kill()
	})
	e.Run()
	if s.Tokens() != 1 {
		t.Fatalf("token lost on kill: tokens = %d, want 1", s.Tokens())
	}
}

func TestBarrierReleasesTogetherAndCycles(t *testing.T) {
	e := NewEnv()
	b := NewBarrier(e, 3)
	var releases []time.Duration
	for i := 0; i < 3; i++ {
		delay := time.Duration(i+1) * 10 * time.Millisecond
		e.Go("r", func(p *Proc) {
			for cycle := 0; cycle < 2; cycle++ {
				p.Sleep(delay)
				b.Await(p)
				releases = append(releases, p.Now())
			}
		})
	}
	e.Run()
	if len(releases) != 6 {
		t.Fatalf("%d releases, want 6", len(releases))
	}
	for _, r := range releases[:3] {
		if r != 30*time.Millisecond {
			t.Fatalf("cycle 1 release at %v, want 30ms", r)
		}
	}
	for _, r := range releases[3:] {
		if r != 60*time.Millisecond {
			t.Fatalf("cycle 2 release at %v, want 60ms", r)
		}
	}
	if b.Cycles != 2 {
		t.Fatalf("Cycles = %d, want 2", b.Cycles)
	}
}

func TestBarrierKilledPartyRetractsArrival(t *testing.T) {
	e := NewEnv()
	b := NewBarrier(e, 2)
	victim := e.Go("victim", func(p *Proc) { b.Await(p) })
	e.Go("killer", func(p *Proc) {
		p.Sleep(time.Millisecond)
		victim.Kill()
	})
	released := false
	e.Go("pairA", func(p *Proc) {
		p.Sleep(10 * time.Millisecond)
		b.Await(p)
		released = true
	})
	e.Go("pairB", func(p *Proc) {
		p.Sleep(10 * time.Millisecond)
		b.Await(p)
	})
	e.Run()
	if !released {
		t.Fatal("barrier stuck after a party was killed")
	}
}

func TestQueueFIFOAndBlocking(t *testing.T) {
	e := NewEnv()
	q := NewQueue[int](e)
	var got []int
	e.Go("consumer", func(p *Proc) {
		for i := 0; i < 3; i++ {
			got = append(got, q.Get(p))
		}
	})
	e.Go("producer", func(p *Proc) {
		for i := 1; i <= 3; i++ {
			p.Sleep(time.Millisecond)
			q.Put(i * 10)
		}
	})
	e.Run()
	want := []int{10, 20, 30}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestQueueGetTimeout(t *testing.T) {
	e := NewEnv()
	q := NewQueue[string](e)
	var ok1, ok2 bool
	var v2 string
	e.Go("c", func(p *Proc) {
		_, ok1 = q.GetTimeout(p, 5*time.Millisecond)
		v2, ok2 = q.GetTimeout(p, time.Hour)
	})
	e.Go("producer", func(p *Proc) {
		p.Sleep(20 * time.Millisecond)
		q.Put("late")
	})
	e.Run()
	if ok1 {
		t.Fatal("GetTimeout returned a value from an empty queue")
	}
	if !ok2 || v2 != "late" {
		t.Fatalf("second GetTimeout = (%q,%v), want (late,true)", v2, ok2)
	}
}

func TestQueueTryGet(t *testing.T) {
	e := NewEnv()
	q := NewQueue[int](e)
	if _, ok := q.TryGet(); ok {
		t.Fatal("TryGet on empty queue succeeded")
	}
	q.Put(7)
	if v, ok := q.TryGet(); !ok || v != 7 {
		t.Fatalf("TryGet = (%d,%v), want (7,true)", v, ok)
	}
	if q.Len() != 0 {
		t.Fatalf("Len = %d, want 0", q.Len())
	}
}
