package sim

import (
	"math/rand"
	"sort"
	"testing"
	"time"
)

// refMin returns the index of the (t, seq)-minimum event in live — the
// reference model every ladder pop is checked against.
func refMin(live []*Event) int {
	best := 0
	for i := 1; i < len(live); i++ {
		a, b := live[i], live[best]
		if a.t < b.t || (a.t == b.t && a.seq < b.seq) {
			best = i
		}
	}
	return best
}

// TestLadderMatchesReferenceOrder drives the ladder with seeded random
// interleavings of pushes and pops and checks every pop against a reference
// model of the live set — the exact (t, seq) total order the old binary heap
// produced and the determinism contract depends on.
func TestLadderMatchesReferenceOrder(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		var l ladder
		var live []*Event
		seq := uint64(0)
		floor := time.Duration(0) // pops advance the clock; pushes stay >= it
		for op := 0; op < 5000; op++ {
			if rng.Intn(3) != 0 || len(live) == 0 {
				seq++
				ev := &Event{
					t:   floor + time.Duration(rng.Intn(2000))*time.Microsecond,
					seq: seq,
				}
				l.push(ev)
				live = append(live, ev)
			} else {
				got := l.pop()
				i := refMin(live)
				if got != live[i] {
					t.Fatalf("seed %d op %d: pop (%v,%d), reference min (%v,%d)",
						seed, op, got.t, got.seq, live[i].t, live[i].seq)
				}
				floor = got.t
				live = append(live[:i], live[i+1:]...)
			}
		}
		for len(live) > 0 {
			got := l.pop()
			i := refMin(live)
			if got != live[i] {
				t.Fatalf("seed %d drain: pop (%v,%d), reference min (%v,%d)",
					seed, got.t, got.seq, live[i].t, live[i].seq)
			}
			live = append(live[:i], live[i+1:]...)
		}
		if l.pop() != nil {
			t.Fatalf("seed %d: ladder not empty after drain", seed)
		}
	}
}

// TestLadderDrainIsTotalOrder pushes a large shuffled batch and drains it,
// asserting the exact sorted (t, seq) sequence comes back — including long
// runs of equal timestamps that must not straddle the split boundary.
func TestLadderDrainIsTotalOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var l ladder
	var all []*Event
	for i := 0; i < 3000; i++ {
		ev := &Event{
			// Few distinct timestamps → many ties stressing the equal-time
			// extension in refill.
			t:   time.Duration(rng.Intn(40)) * time.Millisecond,
			seq: uint64(i + 1),
		}
		all = append(all, ev)
	}
	rng.Shuffle(len(all), func(i, j int) { all[i], all[j] = all[j], all[i] })
	for _, ev := range all {
		l.push(ev)
	}
	want := append([]*Event(nil), all...)
	sort.Slice(want, func(i, j int) bool {
		if want[i].t != want[j].t {
			return want[i].t < want[j].t
		}
		return want[i].seq < want[j].seq
	})
	for i, w := range want {
		got := l.pop()
		if got != w {
			t.Fatalf("pop %d: got (%v,%d), want (%v,%d)", i, got.t, got.seq, w.t, w.seq)
		}
	}
	if l.pop() != nil {
		t.Fatal("ladder not empty after full drain")
	}
}

// TestLadderInterleavedSchedule mirrors the engine's use: pops advance a
// clock and pushes schedule into the future relative to it.
func TestLadderInterleavedSchedule(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var l ladder
	seq := uint64(0)
	now := time.Duration(0)
	push := func(delay time.Duration) {
		seq++
		l.push(&Event{t: now + delay, seq: seq})
	}
	for i := 0; i < 64; i++ {
		push(time.Duration(rng.Intn(500)+1) * time.Microsecond)
	}
	var lastT time.Duration
	var lastSeq uint64
	pops := 0
	for {
		ev := l.pop()
		if ev == nil {
			break
		}
		if ev.t < lastT || (ev.t == lastT && ev.seq < lastSeq) {
			t.Fatalf("pop %d: (%v,%d) after (%v,%d)", pops, ev.t, ev.seq, lastT, lastSeq)
		}
		lastT, lastSeq = ev.t, ev.seq
		now = ev.t
		pops++
		if pops < 20000 {
			// Self-rescheduling pattern plus occasional far-future fan-out.
			push(time.Microsecond)
			if pops%97 == 0 {
				for k := 0; k < 5; k++ {
					push(time.Duration(rng.Intn(100000)+1) * time.Microsecond)
				}
			}
		}
	}
	if pops < 20000 {
		t.Fatalf("drained after %d pops, expected >= 20000", pops)
	}
}
