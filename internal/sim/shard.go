package sim

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// ShardGroup runs several independent environments — the shards of a
// partitioned simulation — in conservative lockstep. Each shard owns its own
// clock, queues, processes and devices; the group's only cross-shard
// structure is the CrossBarrier, so between rendezvous points the shards are
// embarrassingly parallel and their interleaving on host cores cannot affect
// any shard's event order.
type ShardGroup struct {
	envs []*Env
}

// NewShardGroup groups the given environments. The slice order defines shard
// indices, which the merge layer uses as the deterministic tie-breaker.
func NewShardGroup(envs ...*Env) *ShardGroup { return &ShardGroup{envs: envs} }

// Shards returns the shard count.
func (g *ShardGroup) Shards() int { return len(g.envs) }

// Env returns shard i's environment.
func (g *ShardGroup) Env(i int) *Env { return g.envs[i] }

// EventsFired sums events dispatched across every shard.
func (g *ShardGroup) EventsFired() uint64 {
	var n uint64
	for _, e := range g.envs {
		n += e.EventsFired()
	}
	return n
}

// MaxNow returns the latest virtual clock across the shards.
func (g *ShardGroup) MaxNow() time.Duration {
	var t time.Duration
	for _, e := range g.envs {
		if e.Now() > t {
			t = e.Now()
		}
	}
	return t
}

// RunRound advances every shard concurrently, one host goroutine per shard,
// until each either drains idle or pauses at a filled gate (Env.Break). The
// shards share no mutable state, so the round's outcome is independent of
// host scheduling and GOMAXPROCS. A panic inside any shard is re-raised here
// after every shard has stopped, lowest shard index first, so failures also
// surface deterministically.
func (g *ShardGroup) RunRound() {
	if len(g.envs) == 1 {
		g.envs[0].Run()
		return
	}
	panics := make([]any, len(g.envs))
	var wg sync.WaitGroup
	for i, e := range g.envs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { panics[i] = recover() }()
			e.Run()
		}()
	}
	wg.Wait()
	for _, p := range panics {
		if p != nil {
			panic(p)
		}
	}
}

// Gate is one shard's side of a CrossBarrier: parties processes Await it;
// when the last one arrives the gate records the shard's local rendezvous
// time and pauses the shard's run loop (Env.Break) so the coordinator can
// align every shard before releasing anyone.
type Gate struct {
	env     *Env
	parties int
	ws      []waiter
	arrival time.Duration
	full    bool
}

// Await parks the calling process until the coordinator releases the
// rendezvous. Unlike Barrier.Await, the last arriver parks too: the release
// time is a cross-shard decision this shard cannot take alone.
func (g *Gate) Await(p *Proc) {
	if p == nil || p.env != g.env {
		panic("sim: Gate.Await from a foreign or nil process")
	}
	seq := p.prepark()
	g.ws = append(g.ws, waiter{p: p, seq: seq})
	if len(g.ws) == g.parties {
		g.full = true
		g.arrival = g.env.now
		g.env.Break()
	}
	p.park()
}

// CrossBarrier is the group's rendezvous coordinator: one Gate per shard.
// Release implements the conservative-lookahead step — within a rendezvous
// interval the shards exchange nothing, so each may run arbitrarily far
// ahead (the lookahead is effectively the whole interval); at the
// rendezvous, no shard proceeds before the slowest one's arrival time.
type CrossBarrier struct {
	gates []*Gate
	// Cycles counts completed cross-shard rendezvous.
	Cycles int
}

// NewCrossBarrier builds a barrier over the group with parties[i] processes
// expected at shard i's gate.
func NewCrossBarrier(g *ShardGroup, parties []int) *CrossBarrier {
	if len(parties) != g.Shards() {
		panic(fmt.Sprintf("sim: NewCrossBarrier with %d party counts for %d shards",
			len(parties), g.Shards()))
	}
	b := &CrossBarrier{gates: make([]*Gate, g.Shards())}
	for i, n := range parties {
		if n < 1 {
			panic(fmt.Sprintf("sim: shard %d gate needs >= 1 party, got %d", i, n))
		}
		b.gates[i] = &Gate{env: g.envs[i], parties: n}
	}
	return b
}

// Gate returns shard i's gate.
func (b *CrossBarrier) Gate(i int) *Gate { return b.gates[i] }

// Full reports whether every gate filled — the group rendezvoused and is
// ready for Release.
func (b *CrossBarrier) Full() bool {
	for _, g := range b.gates {
		if !g.full {
			return false
		}
	}
	return true
}

// Arrivals counts processes currently parked at any gate. Zero after a round
// with no full rendezvous means the shards drained and the run is complete;
// non-zero without Full means the group wedged (a structural mismatch in
// barrier cadence across shards).
func (b *CrossBarrier) Arrivals() int {
	n := 0
	for _, g := range b.gates {
		n += len(g.ws)
	}
	return n
}

// State renders each gate's occupancy, for wedge diagnostics.
func (b *CrossBarrier) State() string {
	parts := make([]string, len(b.gates))
	for i, g := range b.gates {
		parts[i] = fmt.Sprintf("shard%d %d/%d@%v", i, len(g.ws), g.parties, g.env.Now())
	}
	return strings.Join(parts, ", ")
}

// Release aligns the shards on the rendezvous time T = max over shards of
// the gate-fill instant, then schedules every gate's waiters to wake at T in
// arrival order — exactly where a single-environment Barrier would wake
// them: any events a shard still holds before T fire first, and same-instant
// events queued before the release keep their earlier sequence numbers. The
// gates reset for the next cycle. Call only when Full, with every shard
// stopped.
func (b *CrossBarrier) Release() {
	var t time.Duration
	for _, g := range b.gates {
		if g.arrival > t {
			t = g.arrival
		}
	}
	for _, g := range b.gates {
		ws := g.ws
		g.ws = nil
		g.full = false
		g.arrival = 0
		env := g.env
		env.At(t, func() {
			for _, w := range ws {
				env.wakeLater(w.p, w.seq, wakeSignal)
			}
		})
	}
	b.Cycles++
}
