package sim

import (
	"fmt"
	"testing"
	"time"
)

// shardTrace runs two shards whose processes iterate with different step
// lengths and rendezvous through a CrossBarrier, returning each shard's
// wake-time log. The coordinator loop mirrors the cluster engine's.
func shardTrace(t *testing.T) (logs [2][]string) {
	t.Helper()
	envs := []*Env{NewEnv(), NewEnv()}
	g := NewShardGroup(envs...)
	b := NewCrossBarrier(g, []int{2, 1})
	steps := [][]time.Duration{
		{3 * time.Millisecond, 5 * time.Millisecond}, // shard 0: two procs
		{11 * time.Millisecond},                      // shard 1: one slow proc
	}
	for si, env := range envs {
		gate := b.Gate(si)
		for pi, step := range steps[si] {
			env.Go(fmt.Sprintf("w%d", pi), func(p *Proc) {
				for i := 0; i < 3; i++ {
					p.Sleep(step)
					gate.Await(p)
					logs[si] = append(logs[si],
						fmt.Sprintf("s%dp%d cycle %d woke at %v", si, pi, i, p.Now()))
				}
			})
		}
	}
	for {
		g.RunRound()
		if b.Full() {
			b.Release()
			continue
		}
		if b.Arrivals() != 0 {
			t.Fatalf("wedged: %s", b.State())
		}
		break
	}
	if b.Cycles != 3 {
		t.Fatalf("cycles = %d, want 3", b.Cycles)
	}
	return logs
}

// TestCrossBarrierAlignsShards checks the conservative release rule: every
// waiter wakes at the slowest shard's arrival time, cycle after cycle.
func TestCrossBarrierAlignsShards(t *testing.T) {
	logs := shardTrace(t)
	// Shard 1's proc arrives at 11ms/22ms/33ms — always last — so every
	// cycle releases at its arrival times.
	want0 := []string{
		"s0p0 cycle 0 woke at 11ms", "s0p1 cycle 0 woke at 11ms",
		"s0p0 cycle 1 woke at 22ms", "s0p1 cycle 1 woke at 22ms",
		"s0p0 cycle 2 woke at 33ms", "s0p1 cycle 2 woke at 33ms",
	}
	want1 := []string{
		"s1p0 cycle 0 woke at 11ms",
		"s1p0 cycle 1 woke at 22ms",
		"s1p0 cycle 2 woke at 33ms",
	}
	for i, w := range want0 {
		if i >= len(logs[0]) || logs[0][i] != w {
			t.Fatalf("shard 0 log %d: got %v, want %q", i, logs[0], w)
		}
	}
	for i, w := range want1 {
		if i >= len(logs[1]) || logs[1][i] != w {
			t.Fatalf("shard 1 log %d: got %v, want %q", i, logs[1], w)
		}
	}
}

// TestShardGroupDeterministic runs the same sharded workload repeatedly; the
// traces must be identical run to run — host scheduling must not leak in.
func TestShardGroupDeterministic(t *testing.T) {
	first := shardTrace(t)
	for rep := 0; rep < 5; rep++ {
		again := shardTrace(t)
		for s := range first {
			if len(first[s]) != len(again[s]) {
				t.Fatalf("rep %d shard %d: %d entries vs %d", rep, s, len(again[s]), len(first[s]))
			}
			for i := range first[s] {
				if first[s][i] != again[s][i] {
					t.Fatalf("rep %d shard %d entry %d: %q vs %q",
						rep, s, i, again[s][i], first[s][i])
				}
			}
		}
	}
}

// TestBreakPausesAndResumes checks Env.Break stops the run loop after the
// current dispatch with all queued events intact, and a later Run resumes.
func TestBreakPausesAndResumes(t *testing.T) {
	e := NewEnv()
	var fired []int
	e.Schedule(time.Millisecond, func() {
		fired = append(fired, 1)
		e.Break()
	})
	e.Schedule(2*time.Millisecond, func() { fired = append(fired, 2) })
	e.Run()
	if len(fired) != 1 || fired[0] != 1 {
		t.Fatalf("after break: fired = %v, want [1]", fired)
	}
	if e.Now() != time.Millisecond {
		t.Fatalf("clock advanced to %v during break", e.Now())
	}
	if e.Idle() {
		t.Fatal("break discarded queued events")
	}
	e.Run()
	if len(fired) != 2 || fired[1] != 2 {
		t.Fatalf("after resume: fired = %v, want [1 2]", fired)
	}
}

// TestShardGroupPanicSurfacesDeterministically makes two shards panic in the
// same round and checks the lowest shard's panic is the one re-raised.
func TestShardGroupPanicSurfacesDeterministically(t *testing.T) {
	for rep := 0; rep < 10; rep++ {
		envs := []*Env{NewEnv(), NewEnv(), NewEnv()}
		g := NewShardGroup(envs...)
		envs[1].Go("boom1", func(p *Proc) {
			p.Sleep(time.Millisecond)
			panic("shard 1 exploded")
		})
		envs[2].Go("boom2", func(p *Proc) {
			p.Sleep(time.Microsecond)
			panic("shard 2 exploded")
		})
		func() {
			defer func() {
				r := recover()
				if r != "shard 1 exploded" {
					t.Fatalf("rep %d: recovered %v, want shard 1's panic", rep, r)
				}
			}()
			g.RunRound()
			t.Fatalf("rep %d: RunRound returned without panicking", rep)
		}()
	}
}

// TestNegativeDelayWarnsOnce checks the Schedule contract: the clamp fires
// every time, the warning exactly once per Env.
func TestNegativeDelayWarnsOnce(t *testing.T) {
	e := NewEnv()
	var warns []string
	e.SetWarnFunc(func(code, msg string) { warns = append(warns, code+": "+msg) })
	var fired []time.Duration
	e.Schedule(5*time.Millisecond, func() {
		e.Schedule(-3*time.Millisecond, func() { fired = append(fired, e.Now()) })
		e.Schedule(-time.Hour, func() { fired = append(fired, e.Now()) })
	})
	e.Run()
	if len(fired) != 2 || fired[0] != 5*time.Millisecond || fired[1] != 5*time.Millisecond {
		t.Fatalf("negative delays fired at %v, want clamped to 5ms", fired)
	}
	if len(warns) != 1 {
		t.Fatalf("got %d warnings, want exactly 1: %v", len(warns), warns)
	}
	if warns[0][:len("negative-delay")] != "negative-delay" {
		t.Fatalf("warning code: %q", warns[0])
	}
}
