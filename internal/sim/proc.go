package sim

import (
	"fmt"
	"time"
)

// wakeKind tells a parked process why it is being resumed.
type wakeKind int

const (
	wakeRun    wakeKind = iota // initial dispatch
	wakeTimer                  // a Sleep or timeout expired
	wakeSignal                 // a synchronization primitive fired
	wakeKill                   // the process is being killed
)

// procState tracks where a process is in its lifecycle.
type procState int

const (
	procNew procState = iota
	procRunning
	procParked
	procDone
)

// killedPanic is the sentinel used to unwind a killed process. Primitive
// wait functions install deferred cleanup so that an unwinding process
// removes itself from wait queues and releases held resources.
type killedPanic struct{ p *Proc }

func (k killedPanic) String() string { return "sim: process " + k.p.name + " killed" }

// Proc is a simulated process. All blocking methods (Sleep, primitive waits,
// resource transfers) consume virtual time only; the hosting goroutine is
// parked while other events run. Methods on Proc must only be called from
// the process's own body unless documented otherwise.
type Proc struct {
	env     *Env
	name    string
	resume  chan wakeKind
	state   procState
	waitSeq uint64
	killed  bool
	exitWs  []waiter // processes joined on this one
}

// waiter pairs a parked process with the wait sequence that identifies the
// park, so stale wakes can be discarded.
type waiter struct {
	p   *Proc
	seq uint64
}

// Go spawns a new simulated process running fn. The process starts at the
// current virtual time (after already-queued events at this instant). Go may
// be called from scheduler or process context.
func (e *Env) Go(name string, fn func(*Proc)) *Proc {
	p := &Proc{env: e, name: name, resume: make(chan wakeKind)}
	e.nprocs++
	e.Schedule(0, func() { e.startProc(p, fn) })
	return p
}

func (e *Env) startProc(p *Proc, fn func(*Proc)) {
	if p.killed {
		// Killed before it ever ran: finish it without executing fn.
		p.finish()
		e.nprocs--
		return
	}
	go func() {
		defer func() {
			r := recover()
			if r != nil {
				if _, ok := r.(killedPanic); !ok {
					p.env.fatal = r
				}
			}
			p.finish()
			p.env.nprocs--
			p.env.parked <- struct{}{}
		}()
		if k := <-p.resume; k == wakeKill {
			panic(killedPanic{p})
		}
		fn(p)
	}()
	p.state = procRunning
	e.switchTo(p, wakeRun)
}

// finish marks the process done and wakes any joiners. Runs in the process's
// goroutine just before it returns control to the scheduler.
func (p *Proc) finish() {
	p.state = procDone
	ws := p.exitWs
	p.exitWs = nil
	for _, w := range ws {
		p.env.wakeLater(w.p, w.seq, wakeSignal)
	}
}

// Env returns the environment the process belongs to.
func (p *Proc) Env() *Env { return p.env }

// Name returns the name given at spawn time.
func (p *Proc) Name() string { return p.name }

// Done reports whether the process has finished (normally or by kill).
// Callable from any simulation context.
func (p *Proc) Done() bool { return p.state == procDone }

// Killed reports whether Kill has been requested or delivered.
func (p *Proc) Killed() bool { return p.killed }

// Now returns the current virtual time (shorthand for p.Env().Now()).
func (p *Proc) Now() time.Duration { return p.env.now }

// prepark reserves a wait slot and returns its identifying sequence number.
// The caller must enqueue a waiter carrying this sequence (if a primitive
// will wake it) and then call park without yielding in between.
func (p *Proc) prepark() uint64 {
	p.waitSeq++
	return p.waitSeq
}

// park blocks the process until a matching wake arrives, returning the wake
// kind. A kill delivered at any park unwinds the process via panic; wait
// primitives use deferred cleanup to stay consistent under that unwind.
func (p *Proc) park() wakeKind {
	p.state = procParked
	p.env.parked <- struct{}{}
	k := <-p.resume
	if k == wakeKill || p.killed {
		panic(killedPanic{p})
	}
	return k
}

// Sleep advances the process by d of virtual time. A non-positive d yields
// the processor for the current instant (other due events run) and returns.
func (p *Proc) Sleep(d time.Duration) {
	if d < 0 {
		d = 0
	}
	seq := p.prepark()
	ev, gen := p.env.scheduleWake(d, p, seq, wakeTimer)
	defer p.env.cancelWake(ev, gen) // drop the stale timer if a kill unwinds the sleep
	p.park()
}

// Yield lets all other events scheduled at the current instant run before
// the process continues.
func (p *Proc) Yield() { p.Sleep(0) }

// Kill requests asynchronous termination of the process. The process unwinds
// (running deferred cleanup inside primitives) the next time it is parked, or
// immediately at its next park if it is currently running. Killing a done
// process is a no-op. Kill must not be called on the currently running
// process; use KillSelf for that.
func (p *Proc) Kill() {
	if p.state == procDone || p.killed {
		return
	}
	p.killed = true
	if p.env.cur == p {
		panic("sim: Kill called on the running process; use KillSelf")
	}
	p.env.Schedule(0, func() {
		if p.state == procParked {
			p.env.wake(p, p.waitSeq, wakeKill)
		}
		// If it is procNew the startProc event will observe p.killed.
	})
}

// KillSelf terminates the calling process immediately, unwinding through any
// deferred cleanup.
func (p *Proc) KillSelf() {
	p.killed = true
	panic(killedPanic{p})
}

// Join blocks until q finishes. Joining an already-done process returns
// immediately. A process must not join itself.
func (p *Proc) Join(q *Proc) {
	if q.state == procDone {
		return
	}
	if q == p {
		panic("sim: process joining itself")
	}
	seq := p.prepark()
	q.exitWs = append(q.exitWs, waiter{p, seq})
	p.park()
}

// String implements fmt.Stringer.
func (p *Proc) String() string {
	return fmt.Sprintf("sim.Proc{%s state=%d}", p.name, p.state)
}
