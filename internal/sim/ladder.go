package sim

import (
	"sort"
	"time"
)

// ladder is the Env's pending-event scheduler: a two-band priority structure
// replacing the former container/heap binary heap. The near band holds the
// earliest events, kept fully sorted in *descending* (t, seq) order so the
// next event pops off the end in O(1) and a binary-search insert shifts only
// the band's small tail. Everything later than the split boundary waits in
// the far band, which absorbs pushes in O(1) and is sorted lazily, one chunk
// at a time, as the near band drains.
//
// The structure preserves the exact (t, seq) total order a single heap would
// produce — the split boundary is maintained so equal-time events can never
// straddle the two bands — while dropping the heap's interface boxing and
// per-operation sift costs from the dispatch hot path.
type ladder struct {
	near []*Event // sorted descending by (t, seq); near[len-1] is next
	far  []*Event // events with t > split; far[:farSorted] ascending, rest unsorted
	// farSorted is the length of far's sorted spine: refills sort only the
	// freshly pushed tail and merge it in, so long-parked events are not
	// re-sorted on every refill.
	farSorted int
	// split is the newest timestamp admitted into the near band (inclusive).
	split time.Duration
}

// nearChunk bounds how many events one refill promotes into the near band.
// Small enough that the shifting insert stays cheap, large enough that
// refills amortize across many pops.
const nearChunk = 64

func (l *ladder) len() int { return len(l.near) + len(l.far) }

// push files a stamped event. Events at or before the split join the sorted
// near band; later events wait unsorted in far.
func (l *ladder) push(ev *Event) {
	if len(l.near) == 0 && len(l.far) == 0 {
		l.split = ev.t
		l.near = append(l.near, ev)
		return
	}
	if ev.t <= l.split {
		i := sort.Search(len(l.near), func(i int) bool {
			n := l.near[i]
			return n.t < ev.t || (n.t == ev.t && n.seq < ev.seq)
		})
		l.near = append(l.near, nil)
		copy(l.near[i+1:], l.near[i:])
		l.near[i] = ev
		return
	}
	l.far = append(l.far, ev)
}

// peek returns the earliest pending event without removing it, or nil when
// the ladder is empty. May promote a chunk from far into near.
func (l *ladder) peek() *Event {
	if len(l.near) == 0 {
		if len(l.far) == 0 {
			return nil
		}
		l.refill()
	}
	return l.near[len(l.near)-1]
}

// pop removes and returns the earliest pending event, or nil when empty.
func (l *ladder) pop() *Event {
	ev := l.peek()
	if ev == nil {
		return nil
	}
	n := len(l.near) - 1
	l.near[n] = nil
	l.near = l.near[:n]
	return ev
}

// refill promotes the earliest chunk of far into the (empty) near band:
// sort the unsorted tail, merge it with the sorted spine, move the first
// nearChunk events — extended through any run of equal timestamps so the
// split boundary never divides same-time events — and advance split.
func (l *ladder) refill() {
	if l.farSorted < len(l.far) {
		tail := l.far[l.farSorted:]
		sort.Slice(tail, func(i, j int) bool {
			if tail[i].t != tail[j].t {
				return tail[i].t < tail[j].t
			}
			return tail[i].seq < tail[j].seq
		})
		if l.farSorted > 0 {
			l.far = mergeEvents(l.far[:l.farSorted], tail)
		}
		l.farSorted = len(l.far)
	}
	k := nearChunk
	if k > len(l.far) {
		k = len(l.far)
	}
	for k < len(l.far) && l.far[k].t == l.far[k-1].t {
		k++
	}
	l.split = l.far[k-1].t
	for i := k - 1; i >= 0; i-- {
		l.near = append(l.near, l.far[i])
	}
	rest := copy(l.far, l.far[k:])
	for i := rest; i < len(l.far); i++ {
		l.far[i] = nil
	}
	l.far = l.far[:rest]
	l.farSorted = rest
}

// mergeEvents merges two (t, seq)-ascending slices into a fresh slice.
func mergeEvents(a, b []*Event) []*Event {
	out := make([]*Event, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		x, y := a[i], b[j]
		if x.t < y.t || (x.t == y.t && x.seq < y.seq) {
			out = append(out, x)
			i++
		} else {
			out = append(out, y)
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}
