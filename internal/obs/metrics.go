package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"nvmcp/internal/stats"
	"nvmcp/internal/trace"
)

// Labels is a metric's label set. The empty (or nil) set is the cluster
// scope; per-node and per-rank metrics add "node"/"actor" labels. Labels are
// copied on first use, so callers may reuse maps.
type Labels map[string]string

// canon renders labels in canonical (sorted) Prometheus form, which also
// serves as the identity key inside the registry. Hot publication paths
// avoid calling this repeatedly: Recorders precompute their scope's canon
// string once and hand it to the registry's *Canon accessors.
func (l Labels) canon() string {
	if len(l) == 0 {
		return ""
	}
	keys := make([]string, 0, len(l))
	for k := range l {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(strconv.Quote(l[k]))
	}
	b.WriteByte('}')
	return b.String()
}

func (l Labels) clone() Labels {
	if len(l) == 0 {
		return nil
	}
	out := make(Labels, len(l))
	for k, v := range l {
		out[k] = v
	}
	return out
}

// Counter is a monotonically increasing int64 metric.
type Counter struct {
	mu sync.Mutex
	v  int64
}

// Add increments the counter.
func (c *Counter) Add(delta int64) {
	c.mu.Lock()
	c.v += delta
	c.mu.Unlock()
}

// Get returns the current value.
func (c *Counter) Get() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.v
}

// Gauge is a settable float64 metric.
type Gauge struct {
	mu sync.Mutex
	v  float64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) {
	g.mu.Lock()
	g.v = v
	g.mu.Unlock()
}

// Get returns the current value.
func (g *Gauge) Get() float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.v
}

// Histogram is a mutex-guarded wrapper over stats.Histogram that also tracks
// the observation sum, for Prometheus-style exposition.
type Histogram struct {
	mu  sync.Mutex
	h   *stats.Histogram
	sum float64
}

// Observe counts one observation.
func (h *Histogram) Observe(x float64) {
	h.mu.Lock()
	h.h.Add(x)
	if !math.IsNaN(x) {
		h.sum += x
	}
	h.mu.Unlock()
}

// Snapshot returns a copy of the underlying histogram and the running sum.
func (h *Histogram) Snapshot() (stats.Histogram, float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	cp := *h.h
	cp.Edges = append([]float64(nil), h.h.Edges...)
	cp.Counts = append([]int64(nil), h.h.Counts...)
	return cp, h.sum
}

// Timeline is a mutex-guarded step-function series over virtual time — the
// registry's bandwidth-timeline metric, wrapping trace.Timeline.
type Timeline struct {
	mu sync.Mutex
	tl trace.Timeline
}

// Set appends a step (see trace.Timeline.Set).
func (t *Timeline) Set(at time.Duration, v float64) {
	t.mu.Lock()
	t.tl.Set(at, v)
	t.mu.Unlock()
}

// Last returns the most recent step value (0 when empty).
func (t *Timeline) Last() float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.tl.At(1<<62 - 1)
}

// DiffBuckets returns per-window increments of the (cumulative) series.
func (t *Timeline) DiffBuckets(end, width time.Duration) []float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.tl.DiffBuckets(end, width)
}

// PeakDiffBucket returns the largest per-window increment and its index.
func (t *Timeline) PeakDiffBucket(end, width time.Duration) (float64, int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.tl.PeakDiffBucket(end, width)
}

// At returns the value in effect at virtual time at.
func (t *Timeline) At(at time.Duration) float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.tl.At(at)
}

// Window returns the step function restricted to [start, end): the value in
// effect at start, then every step strictly inside the range (see
// trace.Timeline.Window).
func (t *Timeline) Window(start, end time.Duration) ([]time.Duration, []float64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.tl.Window(start, end)
}

// Len returns the number of recorded steps.
func (t *Timeline) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.tl.Len()
}

// metricKey identifies one metric instance.
type metricKey struct {
	name   string
	labels string
}

// Registry holds a run's named metrics. All accessor methods create the
// metric on first use, so publishing and reading sites need no registration
// step and never observe nil.
type Registry struct {
	mu        sync.Mutex
	counters  map[metricKey]*Counter
	gauges    map[metricKey]*Gauge
	hists     map[metricKey]*Histogram
	timelines map[metricKey]*Timeline
	labels    map[metricKey]Labels
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:  make(map[metricKey]*Counter),
		gauges:    make(map[metricKey]*Gauge),
		hists:     make(map[metricKey]*Histogram),
		timelines: make(map[metricKey]*Timeline),
		labels:    make(map[metricKey]Labels),
	}
}

// Counter returns the named counter, creating it if needed.
func (r *Registry) Counter(name string, labels Labels) *Counter {
	return r.counterCanon(name, labels.canon(), labels)
}

// counterCanon is Counter with the labels' canonical form precomputed —
// the allocation-free path Recorders use on every Add.
func (r *Registry) counterCanon(name, canon string, labels Labels) *Counter {
	key := metricKey{name, canon}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[key]
	if !ok {
		c = &Counter{}
		r.counters[key] = c
		r.labels[key] = labels.clone()
	}
	return c
}

// Gauge returns the named gauge, creating it if needed.
func (r *Registry) Gauge(name string, labels Labels) *Gauge {
	return r.gaugeCanon(name, labels.canon(), labels)
}

func (r *Registry) gaugeCanon(name, canon string, labels Labels) *Gauge {
	key := metricKey{name, canon}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[key]
	if !ok {
		g = &Gauge{}
		r.gauges[key] = g
		r.labels[key] = labels.clone()
	}
	return g
}

// Histogram returns the named histogram, creating it over the given edges if
// needed. Edges are fixed at creation; later calls may pass nil.
func (r *Registry) Histogram(name string, labels Labels, edges []float64) *Histogram {
	return r.histogramCanon(name, labels.canon(), labels, edges)
}

func (r *Registry) histogramCanon(name, canon string, labels Labels, edges []float64) *Histogram {
	key := metricKey{name, canon}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[key]
	if !ok {
		if len(edges) < 2 {
			panic(fmt.Sprintf("obs: histogram %s created without edges", name))
		}
		h = &Histogram{h: stats.NewHistogram(edges)}
		r.hists[key] = h
		r.labels[key] = labels.clone()
	}
	return h
}

// Timeline returns the named timeline, creating it if needed. Hot callers
// should hold on to the returned handle rather than re-resolving it per
// step — resolving canonicalizes the labels every time.
func (r *Registry) Timeline(name string, labels Labels) *Timeline {
	key := metricKey{name, labels.canon()}
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.timelines[key]
	if !ok {
		t = &Timeline{}
		r.timelines[key] = t
		r.labels[key] = labels.clone()
	}
	return t
}

// CounterTotal sums a counter across every label set it was published under —
// the cluster-level rollup of a per-node/per-rank counter.
func (r *Registry) CounterTotal(name string) int64 {
	r.mu.Lock()
	var cs []*Counter
	for key, c := range r.counters {
		if key.name == name {
			cs = append(cs, c)
		}
	}
	r.mu.Unlock()
	var total int64
	for _, c := range cs {
		total += c.Get()
	}
	return total
}

// sortedKeys returns the keys of any metric map in deterministic order.
func sortedKeys[V any](m map[metricKey]V) []metricKey {
	keys := make([]metricKey, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].name != keys[j].name {
			return keys[i].name < keys[j].name
		}
		return keys[i].labels < keys[j].labels
	})
	return keys
}

// WriteProm renders the registry in Prometheus text exposition format.
// Counters gain a _total suffix; timelines are exposed as a pair of gauges:
// the final cumulative value (<name>_cum) and the series length
// (<name>_steps) — the full series belongs in the JSONL/report sinks.
func (r *Registry) WriteProm(w io.Writer) error {
	r.mu.Lock()
	counters := make(map[metricKey]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[metricKey]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[metricKey]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	timelines := make(map[metricKey]*Timeline, len(r.timelines))
	for k, v := range r.timelines {
		timelines[k] = v
	}
	r.mu.Unlock()

	typed := make(map[string]bool)
	header := func(name, kind string) {
		if !typed[name] {
			fmt.Fprintf(w, "# TYPE %s %s\n", name, kind)
			typed[name] = true
		}
	}
	for _, key := range sortedKeys(counters) {
		name := key.name + "_total"
		header(name, "counter")
		fmt.Fprintf(w, "%s%s %d\n", name, key.labels, counters[key].Get())
	}
	for _, key := range sortedKeys(gauges) {
		header(key.name, "gauge")
		fmt.Fprintf(w, "%s%s %g\n", key.name, key.labels, gauges[key].Get())
	}
	for _, key := range sortedKeys(hists) {
		header(key.name, "histogram")
		h, sum := hists[key].Snapshot()
		cum := h.Under
		for i, c := range h.Counts {
			cum += c
			fmt.Fprintf(w, "%s_bucket%s %d\n", key.name, mergeLabels(key.labels, fmt.Sprintf("le=%q", formatEdge(h.Edges[i+1]))), cum)
		}
		fmt.Fprintf(w, "%s_bucket%s %d\n", key.name, mergeLabels(key.labels, `le="+Inf"`), h.Total)
		fmt.Fprintf(w, "%s_sum%s %g\n", key.name, key.labels, sum)
		fmt.Fprintf(w, "%s_count%s %d\n", key.name, key.labels, h.Total)
	}
	for _, key := range sortedKeys(timelines) {
		tl := timelines[key]
		cumName := key.name + "_cum"
		header(cumName, "gauge")
		fmt.Fprintf(w, "%s%s %g\n", cumName, key.labels, tl.Last())
		stepsName := key.name + "_steps"
		header(stepsName, "gauge")
		fmt.Fprintf(w, "%s%s %d\n", stepsName, key.labels, tl.Len())
	}
	return nil
}

// formatEdge renders a histogram edge for the le label.
func formatEdge(e float64) string { return fmt.Sprintf("%g", e) }

// mergeLabels splices an extra label into a canonical label string.
func mergeLabels(canon, extra string) string {
	if canon == "" {
		return "{" + extra + "}"
	}
	return strings.TrimSuffix(canon, "}") + "," + extra + "}"
}

// MetricPoint is one scalar metric sample from Snapshot: the metric name,
// its labels in canonical (sorted, quoted) form, and the current value.
type MetricPoint struct {
	Name   string
	Labels string
	Value  float64
}

// Snapshot appends every scalar metric (counters and gauges) to buf and
// returns it. Unlike Flatten it builds no map and concatenates no strings —
// callers that poll repeatedly (the SLO flight recorder's window-close path)
// reuse the buffer across polls and pay only the value reads. Order is
// unspecified; match points by (Name, Labels).
func (r *Registry) Snapshot(buf []MetricPoint) []MetricPoint {
	r.mu.Lock()
	defer r.mu.Unlock()
	for key, c := range r.counters {
		buf = append(buf, MetricPoint{Name: key.name, Labels: key.labels, Value: float64(c.Get())})
	}
	for key, g := range r.gauges {
		buf = append(buf, MetricPoint{Name: key.name, Labels: key.labels, Value: g.Get()})
	}
	return buf
}

// Flatten returns every scalar metric (counters and gauges) as a map of
// "name{labels}" → value, for embedding into run reports.
func (r *Registry) Flatten() map[string]float64 {
	r.mu.Lock()
	counters := make(map[metricKey]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[metricKey]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	r.mu.Unlock()
	out := make(map[string]float64, len(counters)+len(gauges))
	for key, c := range counters {
		out[key.name+key.labels] = float64(c.Get())
	}
	for key, g := range gauges {
		out[key.name+key.labels] = g.Get()
	}
	return out
}
