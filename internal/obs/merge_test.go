package obs

import (
	"testing"
	"time"

	"nvmcp/internal/sim"
)

// buildShardObs makes an observer whose env ran to a given time with events
// at the given microsecond stamps.
func buildShardObs(t *testing.T, stamps []int64, counter int64) *Observer {
	t.Helper()
	env := sim.NewEnv()
	o := New(env)
	for _, us := range stamps {
		at := time.Duration(us) * time.Microsecond
		env.At(at, func() {
			o.Emit(Event{Type: EvIteration, Attrs: map[string]string{"src": "x"}})
		})
	}
	env.Run()
	o.Registry().Counter("widgets", nil).Add(counter)
	o.Registry().Gauge("level", nil).Set(float64(counter))
	o.Registry().Histogram("lat", nil, []float64{0, 1, 2}).Observe(0.5)
	return o
}

func TestMergeShardsEventOrderAndCounters(t *testing.T) {
	a := buildShardObs(t, []int64{10, 30, 30}, 2)
	b := buildShardObs(t, []int64{20, 30}, 5)
	env := sim.NewEnv()
	env.RunUntil(40 * time.Microsecond)
	dst := New(env)
	MergeShards(dst, []*Observer{a, b})

	evs := dst.Events()
	gotTUS := make([]int64, len(evs))
	for i, ev := range evs {
		gotTUS[i] = ev.TUS
	}
	// Ties at 30us resolve by shard index: both of shard 0's events come
	// before shard 1's.
	want := []int64{10, 20, 30, 30, 30}
	if len(gotTUS) != len(want) {
		t.Fatalf("merged %d events, want %d", len(gotTUS), len(want))
	}
	for i := range want {
		if gotTUS[i] != want[i] {
			t.Fatalf("event %d at %dus, want %dus (full: %v)", i, gotTUS[i], want[i], gotTUS)
		}
	}
	if n := dst.Registry().Counter("widgets", nil).Get(); n != 7 {
		t.Fatalf("merged counter = %d, want 7", n)
	}
	if v := dst.Registry().Gauge("level", nil).Get(); v != 5 {
		t.Fatalf("merged gauge = %g, want last shard's 5", v)
	}
	cp, _ := dst.Registry().Histogram("lat", nil, []float64{0, 1, 2}).Snapshot()
	if cp.Total != 2 {
		t.Fatalf("merged histogram total = %d, want 2", cp.Total)
	}
}

func TestMergeShardsSumsTimelines(t *testing.T) {
	mk := func(points map[time.Duration]float64) *Observer {
		env := sim.NewEnv()
		o := New(env)
		tl := o.Registry().Timeline("bytes", Labels{"class": "ckpt"})
		var ts []time.Duration
		for at := range points {
			ts = append(ts, at)
		}
		// insert in ascending order (trace timelines only append)
		for i := 0; i < len(ts); i++ {
			for j := i + 1; j < len(ts); j++ {
				if ts[j] < ts[i] {
					ts[i], ts[j] = ts[j], ts[i]
				}
			}
		}
		for _, at := range ts {
			tl.Set(at, points[at])
		}
		return o
	}
	// Cumulative series: shard A moves 100 bytes at 1s and 250 by 3s;
	// shard B moves 40 at 2s.
	a := mk(map[time.Duration]float64{1 * time.Second: 100, 3 * time.Second: 250})
	b := mk(map[time.Duration]float64{2 * time.Second: 40})
	dst := New(sim.NewEnv())
	MergeShards(dst, []*Observer{a, b})
	tl := dst.Registry().Timeline("bytes", Labels{"class": "ckpt"})
	checks := map[time.Duration]float64{
		500 * time.Millisecond: 0,
		1 * time.Second:        100,
		2 * time.Second:        140,
		3 * time.Second:        290,
		10 * time.Second:       290,
	}
	for at, want := range checks {
		if got := tl.At(at); got != want {
			t.Fatalf("merged timeline at %v = %g, want %g", at, got, want)
		}
	}
}

func TestEngineWarnReachesBus(t *testing.T) {
	env := sim.NewEnv()
	o := New(env)
	env.Schedule(time.Millisecond, func() {
		env.Schedule(-time.Millisecond, func() {})
	})
	env.Run()
	if n := o.EventCount(EvEngineWarn); n != 1 {
		t.Fatalf("engine warnings on bus = %d, want 1", n)
	}
	evs := o.Events()
	last := evs[len(evs)-1]
	if last.Attrs["code"] != "negative-delay" {
		t.Fatalf("warn code = %q", last.Attrs["code"])
	}
}
