package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"time"

	"nvmcp/internal/stats"
)

// CheckpointRound aggregates one coordinated checkpoint round across ranks,
// rebuilt from the EvCheckpointCommit events on the bus.
type CheckpointRound struct {
	Round int `json:"round"`
	// Ranks is how many ranks committed in this round.
	Ranks int `json:"ranks"`
	// BytesCopied is the data moved at checkpoint time (pre-copied chunks
	// contribute nothing here).
	BytesCopied int64 `json:"bytes_copied"`
	// ChunksCopied / ChunksSkipped aggregate the per-rank stage decisions.
	ChunksCopied  int64 `json:"chunks_copied"`
	ChunksSkipped int64 `json:"chunks_skipped"`
	// DurSecs summarizes per-rank blocking time in seconds.
	DurSecs stats.Summary `json:"dur_secs"`
	// StartUS is the earliest commit-event timestamp of the round.
	StartUS int64 `json:"start_us"`
}

// CheckpointRounds groups the commit events by their round attribute.
// Rounds repeat when a failure rolls the job back; repeated rounds merge,
// which is the honest per-round total (the work really was done again).
func CheckpointRounds(events []Event) []CheckpointRound {
	type acc struct {
		round CheckpointRound
		durs  []float64
	}
	byRound := make(map[int]*acc)
	for _, ev := range events {
		if ev.Type != EvCheckpointCommit {
			continue
		}
		round, _ := strconv.Atoi(ev.Attrs["round"])
		a := byRound[round]
		if a == nil {
			a = &acc{round: CheckpointRound{Round: round, StartUS: ev.TUS}}
			byRound[round] = a
		}
		a.round.Ranks++
		a.round.BytesCopied += ev.Bytes
		if n, err := strconv.ParseInt(ev.Attrs["copied"], 10, 64); err == nil {
			a.round.ChunksCopied += n
		}
		if n, err := strconv.ParseInt(ev.Attrs["skipped"], 10, 64); err == nil {
			a.round.ChunksSkipped += n
		}
		if us, err := strconv.ParseInt(ev.Attrs["dur_us"], 10, 64); err == nil {
			a.durs = append(a.durs, float64(us)/1e6)
		}
		if ev.TUS < a.round.StartUS {
			a.round.StartUS = ev.TUS
		}
	}
	out := make([]CheckpointRound, 0, len(byRound))
	for _, a := range byRound {
		a.round.DurSecs = stats.Summarize(a.durs)
		out = append(out, a.round)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Round < out[j].Round })
	return out
}

// RunReport is the end-of-run machine-readable artifact: the configuration
// the run was launched with, its per-checkpoint statistics, every scalar
// metric, and descriptive rollups — a stable baseline future PRs diff
// against.
type RunReport struct {
	Tool string `json:"tool"`
	// Config echoes the run configuration (the caller passes whatever struct
	// it was launched from).
	Config any `json:"config,omitempty"`
	// Result echoes the run's headline result struct so report totals match
	// the printed tables by construction.
	Result any `json:"result,omitempty"`
	// Checkpoints is the per-round aggregation of coordinated checkpoints.
	Checkpoints []CheckpointRound `json:"checkpoints"`
	// Metrics flattens every counter and gauge as "name{labels}" → value.
	Metrics map[string]float64 `json:"metrics"`
	// Summaries holds stats.Summary rollups of interesting per-round series.
	Summaries map[string]stats.Summary `json:"summaries"`
	// Lineage is the lineage tracer's summary (per-tier transition counts,
	// deepest recovery path, violation count) when tracing was on. Typed
	// `any` so obs does not import the lineage package; the cmds set it.
	Lineage any `json:"lineage,omitempty"`
	// SLO is the flight recorder's summary (windows closed, objective
	// statuses, violation count) when SLO recording was on. Typed `any` so
	// obs does not import the slo package; the cmds set it.
	SLO any `json:"slo,omitempty"`
	// EventCount is the bus length (the JSONL sink has the full stream).
	EventCount int `json:"event_count"`
	// VirtualEndUS is the virtual clock at report time, microseconds.
	VirtualEndUS int64 `json:"virtual_end_us"`
}

// BuildReport assembles the RunReport for this observer. config and result
// are echoed verbatim (pass nil to omit).
func (o *Observer) BuildReport(tool string, config, result any) RunReport {
	events := o.Events()
	rounds := CheckpointRounds(events)
	bytesPerRound := make([]float64, len(rounds))
	durMeanPerRound := make([]float64, len(rounds))
	for i, r := range rounds {
		bytesPerRound[i] = float64(r.BytesCopied)
		durMeanPerRound[i] = r.DurSecs.Mean
	}
	return RunReport{
		Tool:        tool,
		Config:      config,
		Result:      result,
		Checkpoints: rounds,
		Metrics:     o.reg.Flatten(),
		Summaries: map[string]stats.Summary{
			"ckpt_bytes_per_round":    stats.Summarize(bytesPerRound),
			"ckpt_mean_dur_per_round": stats.Summarize(durMeanPerRound),
		},
		EventCount:   len(events),
		VirtualEndUS: o.env.Now().Microseconds(),
	}
}

// WriteReport renders a report as indented JSON.
func WriteReport(w io.Writer, r RunReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		return fmt.Errorf("obs: encode report: %w", err)
	}
	return nil
}

// DurationSeconds is a tiny helper for report builders: a time.Duration in
// float seconds.
func DurationSeconds(d time.Duration) float64 { return d.Seconds() }
