package obs

import (
	"io"
	"sync"
	"time"

	"nvmcp/internal/sim"
	"nvmcp/internal/trace"
)

// Observer is one run's instrumentation hub: the event bus, the metrics
// registry, and the Chrome span recorder, all stamped with the simulation's
// virtual clock. Create one per sim.Env; concurrent publication from
// different host goroutines is safe — the bus and the span recorder are
// serialized by the observer's mutex, the registry by its own.
type Observer struct {
	env *sim.Env
	reg *Registry

	mu     sync.Mutex
	events []Event
	spans  *trace.SpanRecorder
}

// New builds an Observer over a simulation environment.
func New(env *sim.Env) *Observer {
	return &Observer{
		env:   env,
		reg:   NewRegistry(),
		spans: trace.NewSpanRecorder(),
	}
}

// Registry returns the metrics registry.
func (o *Observer) Registry() *Registry { return o.reg }

// Spans returns the Chrome/Perfetto span recorder. Callers must not write
// to it concurrently with live Recorders; read it after the run.
func (o *Observer) Spans() *trace.SpanRecorder {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.spans
}

// UseSpanRecorder redirects span emission into an externally owned recorder
// (cmd/nvmcp-trace passes its own so pre-existing callers keep working).
func (o *Observer) UseSpanRecorder(r *trace.SpanRecorder) {
	if r == nil {
		return
	}
	o.mu.Lock()
	o.spans = r
	o.mu.Unlock()
}

// Emit publishes one event, stamping it with the current virtual time.
func (o *Observer) Emit(ev Event) {
	o.mu.Lock()
	ev.TUS = o.env.Now().Microseconds()
	o.events = append(o.events, ev)
	o.mu.Unlock()
}

// Events returns a copy of every event published so far, in publication
// order (which is virtual-time order, since the bus stamps on arrival).
func (o *Observer) Events() []Event {
	o.mu.Lock()
	defer o.mu.Unlock()
	return append([]Event(nil), o.events...)
}

// EventCount returns how many events of a type were published ("" = all).
func (o *Observer) EventCount(t Type) int {
	o.mu.Lock()
	defer o.mu.Unlock()
	if t == "" {
		return len(o.events)
	}
	n := 0
	for _, ev := range o.events {
		if ev.Type == t {
			n++
		}
	}
	return n
}

// WriteEventsJSONL streams the event log, one JSON object per line.
func (o *Observer) WriteEventsJSONL(w io.Writer) error {
	return WriteJSONL(w, o.Events())
}

// Recorder returns a publication handle scoped to (node, actor). Recorders
// are cheap; make one per rank, helper, or device.
func (o *Observer) Recorder(node int, actor string) *Recorder {
	return &Recorder{o: o, node: node, actor: actor}
}

// Recorder is a nil-safe, scoped publication handle. Every method on a nil
// Recorder is a no-op, so instrumented code needs no conditionals.
type Recorder struct {
	o     *Observer
	node  int
	actor string
}

// Observer returns the backing observer (nil for a nil recorder).
func (r *Recorder) Observer() *Observer {
	if r == nil {
		return nil
	}
	return r.o
}

// Node returns the recorder's node scope.
func (r *Recorder) Node() int {
	if r == nil {
		return 0
	}
	return r.node
}

// Emit publishes an event carrying this recorder's scope.
func (r *Recorder) Emit(t Type, chunk string, bytes int64, attrs map[string]string) {
	if r == nil {
		return
	}
	r.o.Emit(Event{Type: t, Node: r.node, Actor: r.actor, Chunk: chunk, Bytes: bytes, Attrs: attrs})
}

// Add increments the named counter in both the recorder's (node, actor)
// scope and the cluster scope, so per-node breakdowns and rollups are always
// both available.
func (r *Recorder) Add(name string, delta int64) {
	if r == nil {
		return
	}
	r.o.reg.Counter(name, r.scope()).Add(delta)
	r.o.reg.Counter(name, nil).Add(delta)
}

// SetGauge sets the named gauge in the recorder's scope.
func (r *Recorder) SetGauge(name string, v float64) {
	if r == nil {
		return
	}
	r.o.reg.Gauge(name, r.scope()).Set(v)
}

// Observe counts one observation into the named histogram (edges fix the
// bins on first use).
func (r *Recorder) Observe(name string, edges []float64, v float64) {
	if r == nil {
		return
	}
	r.o.reg.Histogram(name, r.scope(), edges).Observe(v)
}

// TimelineSet appends a step to a labeled cluster-scope timeline (e.g. the
// fabric's cumulative checkpoint bytes; labeled by class, not node, so the
// figure code reads one series).
func (r *Recorder) TimelineSet(name string, labels Labels, v float64) {
	if r == nil {
		return
	}
	r.o.reg.Timeline(name, labels).Set(r.o.env.Now(), v)
}

// Span records a completed interval on the recorder's node, in lane tid —
// the auto-wired Perfetto view. Nothing is mirrored onto the event bus:
// spans are the visual record, events the analytical one.
func (r *Recorder) Span(name, cat string, lane int, start, dur time.Duration, args map[string]string) {
	if r == nil {
		return
	}
	r.o.mu.Lock()
	r.o.spans.Span(name, cat, r.node, lane, start, dur, args)
	r.o.mu.Unlock()
}

// Instant records a point event on the recorder's node and lane.
func (r *Recorder) Instant(name, cat string, lane int, at time.Duration, args map[string]string) {
	if r == nil {
		return
	}
	r.o.mu.Lock()
	r.o.spans.Instant(name, cat, r.node, lane, at, args)
	r.o.mu.Unlock()
}

// NameProcess labels the recorder's node lane in the trace viewer.
func (r *Recorder) NameProcess(name string) {
	if r == nil {
		return
	}
	r.o.mu.Lock()
	r.o.spans.NameProcess(r.node, name)
	r.o.mu.Unlock()
}

func (r *Recorder) scope() Labels {
	return Labels{"node": itoa(r.node), "actor": r.actor}
}

// itoa avoids strconv for the tiny node numbers in scope labels.
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
