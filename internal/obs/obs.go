package obs

import (
	"io"
	"sync"
	"time"

	"nvmcp/internal/sim"
	"nvmcp/internal/trace"
)

// Observer is one run's instrumentation hub: the event bus, the metrics
// registry, and the Chrome span recorder, all stamped with the simulation's
// virtual clock. Create one per sim.Env; concurrent publication from
// different host goroutines is safe — the bus and the span recorder are
// serialized by the observer's mutex, the registry by its own.
type Observer struct {
	env *sim.Env
	reg *Registry

	mu      sync.Mutex
	events  []Event
	spans   *trace.SpanRecorder
	spansOn bool
	taps    []func(Event)
	lastTUS int64
}

// New builds an Observer over a simulation environment and attaches the
// engine's warn hook, so rare engine warnings (negative-delay clamps) land
// on the event bus as EvEngineWarn.
func New(env *sim.Env) *Observer {
	o := &Observer{
		env:     env,
		reg:     NewRegistry(),
		spans:   trace.NewSpanRecorder(),
		spansOn: true,
	}
	env.SetWarnFunc(func(code, msg string) {
		o.Emit(Event{Type: EvEngineWarn, Actor: "sim",
			Attrs: map[string]string{"code": code, "msg": msg}})
	})
	return o
}

// SetSpansEnabled turns span/instant recording on or off. Runs that never
// render a Chrome trace disable it so the hot path skips both the recording
// and the per-span label formatting (see Recorder.SpansActive).
func (o *Observer) SetSpansEnabled(on bool) {
	o.mu.Lock()
	o.spansOn = on
	o.mu.Unlock()
}

// Registry returns the metrics registry.
func (o *Observer) Registry() *Registry { return o.reg }

// Spans returns the Chrome/Perfetto span recorder. Callers must not write
// to it concurrently with live Recorders; read it after the run.
func (o *Observer) Spans() *trace.SpanRecorder {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.spans
}

// UseSpanRecorder redirects span emission into an externally owned recorder
// (cmd/nvmcp-trace passes its own so pre-existing callers keep working).
// Attaching a recorder implies the caller wants spans, so it re-enables
// recording if a prior SetSpansEnabled(false) turned it off.
func (o *Observer) UseSpanRecorder(r *trace.SpanRecorder) {
	if r == nil {
		return
	}
	o.mu.Lock()
	o.spans = r
	o.spansOn = true
	o.mu.Unlock()
}

// SetEventTap replaces every installed tap with one callback invoked
// synchronously for every event, in publication order, after the virtual
// timestamp is stamped. The tap runs under the observer's mutex — it must be
// fast and must never publish back into this observer (Registry updates are
// fine; the registry has its own lock). Pass nil to detach everything.
// Consumers that should coexist (the lineage tracer, the SLO flight
// recorder) attach through AddEventTap instead.
func (o *Observer) SetEventTap(tap func(Event)) {
	o.mu.Lock()
	o.taps = o.taps[:0]
	if tap != nil {
		o.taps = append(o.taps, tap)
	}
	o.mu.Unlock()
}

// AddEventTap installs an additional tap alongside any already attached,
// invoked in attach order after the timestamp is stamped. The same contract
// as SetEventTap applies: taps run under the observer's mutex, must be fast,
// and must never publish events back. A nil tap is ignored.
func (o *Observer) AddEventTap(tap func(Event)) {
	if tap == nil {
		return
	}
	o.mu.Lock()
	o.taps = append(o.taps, tap)
	o.mu.Unlock()
}

// Emit publishes one event, stamping it with the current virtual time.
func (o *Observer) Emit(ev Event) {
	o.mu.Lock()
	ev.TUS = o.env.Now().Microseconds()
	o.events = append(o.events, ev)
	o.lastTUS = ev.TUS
	for _, tap := range o.taps {
		tap(ev)
	}
	o.mu.Unlock()
}

// Progress returns the virtual timestamp of the most recent event and the
// bus length. Safe to call from host goroutines that run truly concurrently
// with the simulation (the live introspection server): it reads only
// mutex-guarded observer state, never the simulation clock.
func (o *Observer) Progress() (virtualUS int64, events int) {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.lastTUS, len(o.events)
}

// Events returns a copy of every event published so far, in publication
// order (which is virtual-time order, since the bus stamps on arrival).
func (o *Observer) Events() []Event {
	o.mu.Lock()
	defer o.mu.Unlock()
	return append([]Event(nil), o.events...)
}

// EventCount returns how many events of a type were published ("" = all).
func (o *Observer) EventCount(t Type) int {
	o.mu.Lock()
	defer o.mu.Unlock()
	if t == "" {
		return len(o.events)
	}
	n := 0
	for _, ev := range o.events {
		if ev.Type == t {
			n++
		}
	}
	return n
}

// WriteEventsJSONL streams the event log, one JSON object per line.
func (o *Observer) WriteEventsJSONL(w io.Writer) error {
	return WriteJSONL(w, o.Events())
}

// Recorder returns a publication handle scoped to (node, actor). Recorders
// are cheap; make one per rank, helper, or device.
func (o *Observer) Recorder(node int, actor string) *Recorder {
	r := &Recorder{o: o, node: node, actor: actor}
	// Precompute the scope's canonical label form once: metric publication
	// is the instrumentation hot path, and canonicalizing two labels per
	// counter bump (sort + quote + join) dwarfs the map lookup it keys.
	r.scopeLabels = Labels{"node": itoa(node), "actor": actor}
	r.scopeCanon = r.scopeLabels.canon()
	return r
}

// Recorder is a nil-safe, scoped publication handle. Every method on a nil
// Recorder is a no-op, so instrumented code needs no conditionals.
type Recorder struct {
	o     *Observer
	node  int
	actor string

	scopeLabels Labels
	scopeCanon  string

	childMu  sync.Mutex
	children map[string]*Recorder
}

// Child returns a recorder scoped one level below this one: same node, same
// actor, plus a "scope" label (a tier name, a queue, a phase). Children are
// cached on the parent, so hot loops that resolve the same scope per chunk
// pay one mutex-guarded map hit instead of re-canonicalizing three labels
// per metric bump. Nil-safe: a nil recorder returns nil.
func (r *Recorder) Child(scope string) *Recorder {
	if r == nil {
		return nil
	}
	r.childMu.Lock()
	defer r.childMu.Unlock()
	if c, ok := r.children[scope]; ok {
		return c
	}
	c := &Recorder{o: r.o, node: r.node, actor: r.actor}
	c.scopeLabels = Labels{"node": itoa(r.node), "actor": r.actor, "scope": scope}
	c.scopeCanon = c.scopeLabels.canon()
	if r.children == nil {
		r.children = make(map[string]*Recorder)
	}
	r.children[scope] = c
	return c
}

// Observer returns the backing observer (nil for a nil recorder).
func (r *Recorder) Observer() *Observer {
	if r == nil {
		return nil
	}
	return r.o
}

// Node returns the recorder's node scope.
func (r *Recorder) Node() int {
	if r == nil {
		return 0
	}
	return r.node
}

// Emit publishes an event carrying this recorder's scope.
func (r *Recorder) Emit(t Type, chunk string, bytes int64, attrs map[string]string) {
	if r == nil {
		return
	}
	r.o.Emit(Event{Type: t, Node: r.node, Actor: r.actor, Chunk: chunk, Bytes: bytes, Attrs: attrs})
}

// Add increments the named counter in both the recorder's (node, actor)
// scope and the cluster scope, so per-node breakdowns and rollups are always
// both available.
func (r *Recorder) Add(name string, delta int64) {
	if r == nil {
		return
	}
	r.o.reg.counterCanon(name, r.scopeCanon, r.scopeLabels).Add(delta)
	r.o.reg.counterCanon(name, "", nil).Add(delta)
}

// SetGauge sets the named gauge in the recorder's scope.
func (r *Recorder) SetGauge(name string, v float64) {
	if r == nil {
		return
	}
	r.o.reg.gaugeCanon(name, r.scopeCanon, r.scopeLabels).Set(v)
}

// Observe counts one observation into the named histogram (edges fix the
// bins on first use).
func (r *Recorder) Observe(name string, edges []float64, v float64) {
	if r == nil {
		return
	}
	r.o.reg.histogramCanon(name, r.scopeCanon, r.scopeLabels, edges).Observe(v)
}

// TimelineSet appends a step to a labeled cluster-scope timeline (e.g. the
// fabric's cumulative checkpoint bytes; labeled by class, not node, so the
// figure code reads one series). Hot callers should prefer TimelineHandle.
func (r *Recorder) TimelineSet(name string, labels Labels, v float64) {
	if r == nil {
		return
	}
	r.o.reg.Timeline(name, labels).Set(r.o.env.Now(), v)
}

// TimelineHandle resolves a labeled timeline once so per-step publication
// skips label canonicalization; SetAt stamps with the observer's clock.
// Returns nil on a nil recorder — TimelineRef is nil-safe in turn.
func (r *Recorder) TimelineHandle(name string, labels Labels) *TimelineRef {
	if r == nil {
		return nil
	}
	return &TimelineRef{o: r.o, tl: r.o.reg.Timeline(name, labels)}
}

// TimelineRef is a pre-resolved, nil-safe timeline publication handle.
type TimelineRef struct {
	o  *Observer
	tl *Timeline
}

// Set appends a step at the current virtual time.
func (t *TimelineRef) Set(v float64) {
	if t == nil {
		return
	}
	t.tl.Set(t.o.env.Now(), v)
}

// SpansActive reports whether span recording is on — callers formatting
// span names (Sprintf per iteration) should guard on it so a traceless run
// pays nothing.
func (r *Recorder) SpansActive() bool {
	if r == nil {
		return false
	}
	r.o.mu.Lock()
	defer r.o.mu.Unlock()
	return r.o.spansOn
}

// Span records a completed interval on the recorder's node, in lane tid —
// the auto-wired Perfetto view. Nothing is mirrored onto the event bus:
// spans are the visual record, events the analytical one.
func (r *Recorder) Span(name, cat string, lane int, start, dur time.Duration, args map[string]string) {
	if r == nil {
		return
	}
	r.o.mu.Lock()
	if r.o.spansOn {
		r.o.spans.Span(name, cat, r.node, lane, start, dur, args)
	}
	r.o.mu.Unlock()
}

// Instant records a point event on the recorder's node and lane.
func (r *Recorder) Instant(name, cat string, lane int, at time.Duration, args map[string]string) {
	if r == nil {
		return
	}
	r.o.mu.Lock()
	if r.o.spansOn {
		r.o.spans.Instant(name, cat, r.node, lane, at, args)
	}
	r.o.mu.Unlock()
}

// NameProcess labels the recorder's node lane in the trace viewer.
func (r *Recorder) NameProcess(name string) {
	if r == nil {
		return
	}
	r.o.mu.Lock()
	if r.o.spansOn {
		r.o.spans.NameProcess(r.node, name)
	}
	r.o.mu.Unlock()
}

// itoa avoids strconv for the tiny node numbers in scope labels.
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
