// Package obs is the unified instrumentation layer: a typed, virtual-time-
// stamped event bus, a metrics registry (counters, gauges, histograms,
// bandwidth timelines) with per-node and cluster-level scopes, and sinks
// that render a run as structured JSONL events, a Prometheus-style text
// exposition, a Chrome/Perfetto trace, and an end-of-run RunReport.
//
// Subsystems never talk to sinks directly: they hold a *Recorder — a cheap,
// nil-safe handle scoped to one (node, actor) pair — and publish events,
// spans, and metric updates through it. A nil Recorder drops everything, so
// library code can instrument unconditionally and pay nothing when a test or
// experiment runs without an Observer.
//
// All Observer and Registry state is mutex-guarded: the simulated remote
// helper and application processes are separate host goroutines (the sim
// scheduler interleaves them, but the race detector rightly demands explicit
// synchronization), and experiment sweeps run many simulations concurrently.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// Type names one kind of event in the taxonomy. The set below covers the
// checkpoint lifecycle end to end; sinks treat the type as an opaque label,
// so subsystems may introduce new types without touching this package.
type Type string

// The event taxonomy.
const (
	// EvCheckpointBegin marks one rank entering a coordinated local
	// checkpoint; Attrs carry the round number.
	EvCheckpointBegin Type = "ckpt_begin"
	// EvCheckpointCommit marks the rank's commit flip; Bytes is the data the
	// checkpoint itself copied, Attrs carry round, copied/skipped counts and
	// the duration in microseconds.
	EvCheckpointCommit Type = "ckpt_commit"
	// EvChunkStaged records one chunk staged DRAM→NVM (pre-copy or
	// checkpoint path); Chunk names it, Bytes is its virtual size.
	EvChunkStaged Type = "chunk_staged"
	// EvChunkReDirtied records a modification to a chunk whose staged data
	// had not yet committed — work the checkpoint must redo.
	EvChunkReDirtied Type = "chunk_redirtied"
	// EvChunkShipped records the helper moving one staged chunk to the buddy.
	EvChunkShipped Type = "chunk_shipped"
	// EvPrecopyCopy records one background pre-copy of a chunk; Attrs note
	// whether the copy raced a concurrent modification.
	EvPrecopyCopy Type = "precopy_copy"
	// EvHelperWake / EvHelperSleep mark the remote helper's busy/idle
	// transitions (not every poll — only edges).
	EvHelperWake  Type = "helper_wake"
	EvHelperSleep Type = "helper_sleep"
	// EvRestore records one chunk recovered on restart; Attrs carry the
	// source ("local", "lazy", or "remote").
	EvRestore Type = "restore"
	// EvRemoteTrigger marks a remote checkpoint trigger on a node.
	EvRemoteTrigger Type = "remote_trigger"
	// EvRemoteCommit marks the helper flipping the buddy-side versions.
	EvRemoteCommit Type = "remote_commit"
	// EvFailure records an injected failure; Attrs carry the kind.
	EvFailure Type = "failure"
	// EvFailureSkipped records an injection that was dropped (ranks not
	// live, or another failure already pending); Attrs carry the reason.
	EvFailureSkipped Type = "failure_skipped"
	// EvNVMCorrupt records latent media damage injected into committed
	// chunk payloads; Attrs carry the damaged-chunk count and mode.
	EvNVMCorrupt Type = "nvm_corrupt"
	// EvLinkFlap / EvLinkRestore bracket a fabric degradation window on a
	// node; Attrs carry the residual bandwidth factor and duration.
	EvLinkFlap    Type = "link_flap"
	EvLinkRestore Type = "link_restore"
	// EvShipRetry records the helper backing off after a blocked ship
	// attempt; Attrs carry the reason and attempt number.
	EvShipRetry Type = "ship_retry"
	// EvBuddyFailover records the helper re-buddying to a live node after
	// exhausting retries against a dead one.
	EvBuddyFailover Type = "buddy_failover"
	// EvChecksumError records a restore-time checksum mismatch; Attrs say
	// whether the chunk was salvaged into the recovery cascade.
	EvChecksumError Type = "checksum_error"
	// EvChunkRecovered records the cascade's verdict for one chunk on
	// restart; Attrs carry the tier that supplied it (local/remote/bottom)
	// or "none" when every tier missed.
	EvChunkRecovered Type = "chunk_recovered"
	// EvRecovery marks the cluster relaunching after a failure.
	EvRecovery Type = "recovery"
	// EvRepairDone marks the last rank finishing its post-failure recovery
	// cascade — the instant the repair window that opened at EvFailure
	// closes. Attrs carry the window's length ("mttr_us"), so windowed
	// consumers (the SLO flight recorder) can compute MTTR and degraded
	// time from the bus alone.
	EvRepairDone Type = "repair_done"
	// EvIteration marks one rank finishing a compute iteration.
	EvIteration Type = "iteration"
	// EvChunkDirty records the first modification of a new chunk generation
	// (a clean chunk going dirty); Attrs carry the generation seq. Redirties
	// of an already-staged generation stay EvChunkReDirtied.
	EvChunkDirty Type = "chunk_dirty"
	// EvChunkCommit records one chunk's local commit flip; Attrs carry the
	// committed generation seq and the chunk's version counter.
	EvChunkCommit Type = "chunk_commit"
	// EvRemoteChunkCommit records the helper flipping one chunk's buddy-side
	// committed slot; Attrs carry the committed generation seq.
	EvRemoteChunkCommit Type = "remote_chunk_commit"
	// EvChunkCorrupt records latent media damage to one committed chunk
	// payload (the per-victim companion to the aggregated EvNVMCorrupt);
	// Attrs carry the damaged generation seq, version, mode, and cause.
	EvChunkCorrupt Type = "chunk_corrupt"
	// EvEngineWarn surfaces a rare, deduplicated simulation-engine warning
	// (e.g. the first negative-delay Schedule, clamped to zero, or a shard
	// request falling back to the serial engine); Attrs carry the warning
	// code and message.
	EvEngineWarn Type = "engine_warn"
	// EvPFSDrain records one object actually written to the parallel file
	// system by a drain pass (version-gated rewrites are skipped, so the
	// stream mirrors PFS contents); Attrs carry the object version/seq.
	EvPFSDrain Type = "pfs_drain"
	// EvReplan records a remote-placement re-plan applied during recovery;
	// Attrs carry the failure kind and the avoided holder set.
	EvReplan Type = "replan"
	// EvAbort records a control-plane cancellation of the run; Attrs carry
	// the reason.
	EvAbort Type = "abort"
)

// Event is one structured occurrence on the bus. Times are virtual
// (microseconds since simulation start), matching the Chrome trace
// timestamps so the JSONL stream and the Perfetto view line up.
type Event struct {
	TUS   int64             `json:"t_us"`
	Type  Type              `json:"type"`
	Node  int               `json:"node"`
	Actor string            `json:"actor,omitempty"`
	Chunk string            `json:"chunk,omitempty"`
	Bytes int64             `json:"bytes,omitempty"`
	Attrs map[string]string `json:"attrs,omitempty"`
}

// Time returns the event's virtual time.
func (e Event) Time() time.Duration { return time.Duration(e.TUS) * time.Microsecond }

// WriteJSONL streams events one JSON object per line.
func WriteJSONL(w io.Writer, events []Event) error {
	enc := json.NewEncoder(w)
	for _, ev := range events {
		if err := enc.Encode(ev); err != nil {
			return fmt.Errorf("obs: encode event: %w", err)
		}
	}
	return nil
}
