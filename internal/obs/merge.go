package obs

import (
	"sort"
	"time"

	"nvmcp/internal/stats"
)

// MergeShards folds per-shard observers into dst in a deterministic order —
// the sharded engine's flush-time merge. Each shard publishes into its own
// Observer during the run (so the hot path takes no cross-shard locks); when
// every shard has stopped, the coordinator merges:
//
//   - events: a k-way merge ordered by (virtual time, shard index,
//     per-shard publication order) — the cross-shard total order the
//     determinism contract names. Within one shard the stream is already
//     time-ordered, so the merge is linear.
//   - counters: summed.
//   - gauges: taken in shard order (last shard wins a conflict); callers
//     re-derive cluster-level gauges from the merged registry afterwards.
//   - histograms: bucket-wise pooled.
//   - timelines: summed as step functions — the merged series at any instant
//     is the sum of the shard series, which keeps window-diff readings
//     (e.g. the Figure 10 peak) exact.
//
// dst's environment should already be advanced to the latest shard clock so
// report builders read a consistent end time. No taps run on merged events.
func MergeShards(dst *Observer, shards []*Observer) {
	streams := make([][]Event, len(shards))
	total := 0
	for i, s := range shards {
		streams[i] = s.Events()
		total += len(streams[i])
	}
	idx := make([]int, len(streams))
	dst.mu.Lock()
	merged := make([]Event, 0, len(dst.events)+total)
	merged = append(merged, dst.events...)
	for {
		best := -1
		for i := range streams {
			if idx[i] >= len(streams[i]) {
				continue
			}
			if best < 0 || streams[i][idx[i]].TUS < streams[best][idx[best]].TUS {
				best = i
			}
		}
		if best < 0 {
			break
		}
		merged = append(merged, streams[best][idx[best]])
		idx[best]++
	}
	dst.events = merged
	if n := len(merged); n > 0 && merged[n-1].TUS > dst.lastTUS {
		dst.lastTUS = merged[n-1].TUS
	}
	dst.mu.Unlock()

	regs := make([]*Registry, len(shards))
	for i, s := range shards {
		regs[i] = s.reg
	}
	dst.reg.mergeFrom(regs)
}

// merge pools a snapshotted histogram into h (same edges assumed — both
// sides were created by the same instrumentation site).
func (h *Histogram) merge(cp stats.Histogram, sum float64) {
	h.mu.Lock()
	for i := range cp.Counts {
		h.h.Counts[i] += cp.Counts[i]
	}
	h.h.Under += cp.Under
	h.h.Over += cp.Over
	h.h.Total += cp.Total
	h.sum += sum
	h.mu.Unlock()
}

// mergeFrom absorbs the source registries into dst, iterating every metric
// map in sorted-key order so the merged registry's creation order — and
// with it every downstream rendering — is deterministic.
func (dst *Registry) mergeFrom(srcs []*Registry) {
	for _, src := range srcs {
		src.mu.Lock()
		counters := make(map[metricKey]*Counter, len(src.counters))
		for k, v := range src.counters {
			counters[k] = v
		}
		gauges := make(map[metricKey]*Gauge, len(src.gauges))
		for k, v := range src.gauges {
			gauges[k] = v
		}
		hists := make(map[metricKey]*Histogram, len(src.hists))
		for k, v := range src.hists {
			hists[k] = v
		}
		labels := make(map[metricKey]Labels, len(src.labels))
		for k, v := range src.labels {
			labels[k] = v
		}
		src.mu.Unlock()
		for _, k := range sortedKeys(counters) {
			dst.counterCanon(k.name, k.labels, labels[k]).Add(counters[k].Get())
		}
		for _, k := range sortedKeys(gauges) {
			dst.gaugeCanon(k.name, k.labels, labels[k]).Set(gauges[k].Get())
		}
		for _, k := range sortedKeys(hists) {
			cp, sum := hists[k].Snapshot()
			dst.histogramCanon(k.name, k.labels, labels[k], cp.Edges).merge(cp, sum)
		}
	}

	// Timelines need every source at once: the merged series is the sum of
	// step functions, rebuilt monotonically (trace.Timeline only appends).
	seen := make(map[metricKey]Labels)
	var keys []metricKey
	for _, src := range srcs {
		src.mu.Lock()
		for k := range src.timelines {
			if _, ok := seen[k]; !ok {
				seen[k] = src.labels[k].clone()
				keys = append(keys, k)
			}
		}
		src.mu.Unlock()
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].name != keys[j].name {
			return keys[i].name < keys[j].name
		}
		return keys[i].labels < keys[j].labels
	})
	for _, k := range keys {
		var parts []*Timeline
		for _, src := range srcs {
			src.mu.Lock()
			tl := src.timelines[k]
			src.mu.Unlock()
			if tl != nil {
				parts = append(parts, tl)
			}
		}
		sumStepFunctions(dst.Timeline(k.name, seen[k]), parts)
	}
}

// sumStepFunctions rebuilds dst as the pointwise sum of the source step
// functions: each source is decomposed into (time, delta) increments, the
// increments are merged in time order (ties collapse at the same instant,
// so their ordering cannot affect the series), and the cumulative sum is
// replayed into dst.
func sumStepFunctions(dst *Timeline, srcs []*Timeline) {
	const horizon = 1<<62 - 1
	type step struct {
		t time.Duration
		d float64
	}
	var steps []step
	for _, s := range srcs {
		ts, vs := s.Window(0, horizon)
		prev := 0.0
		for i, t := range ts {
			d := vs[i] - prev
			prev = vs[i]
			if d == 0 {
				continue
			}
			steps = append(steps, step{t, d})
		}
	}
	sort.SliceStable(steps, func(i, j int) bool { return steps[i].t < steps[j].t })
	cum := 0.0
	for _, st := range steps {
		cum += st.d
		dst.Set(st.t, cum)
	}
}
