package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"

	"nvmcp/internal/sim"
)

func TestRecorderScopesAndRollup(t *testing.T) {
	o := New(sim.NewEnv())
	r0 := o.Recorder(0, "rank0")
	r1 := o.Recorder(1, "rank4")
	r0.Add("ckpt_bytes", 100)
	r0.Add("ckpt_bytes", 50)
	r1.Add("ckpt_bytes", 25)

	reg := o.Registry()
	if got := reg.Counter("ckpt_bytes", nil).Get(); got != 175 {
		t.Fatalf("cluster rollup = %d, want 175", got)
	}
	if got := reg.Counter("ckpt_bytes", Labels{"node": "0", "actor": "rank0"}).Get(); got != 150 {
		t.Fatalf("rank0 scope = %d, want 150", got)
	}
	// CounterTotal double-counts by design (scoped + rollup): verify the
	// per-name sum matches that contract rather than silently drifting.
	if got := reg.CounterTotal("ckpt_bytes"); got != 350 {
		t.Fatalf("CounterTotal = %d, want 350 (scoped + rollup)", got)
	}
}

func TestRecorderNilSafe(t *testing.T) {
	var r *Recorder
	r.Emit(EvCheckpointBegin, "", 0, nil)
	r.Add("c", 1)
	r.SetGauge("g", 1)
	r.Observe("h", []float64{0, 1}, 0.5)
	r.TimelineSet("t", nil, 1)
	r.Span("s", "c", 0, 0, time.Second, nil)
	r.Instant("i", "c", 0, 0, nil)
	r.NameProcess("n")
	if r.Observer() != nil || r.Node() != 0 {
		t.Fatal("nil recorder leaked state")
	}
}

func TestEventStampingAndJSONL(t *testing.T) {
	env := sim.NewEnv()
	o := New(env)
	r := o.Recorder(2, "rank9")
	env.Go("emitter", func(p *sim.Proc) {
		p.Sleep(3 * time.Second)
		r.Emit(EvChunkStaged, "psi", 4096, map[string]string{"k": "v"})
	})
	env.Run()

	events := o.Events()
	if len(events) != 1 {
		t.Fatalf("got %d events, want 1", len(events))
	}
	ev := events[0]
	if ev.TUS != 3_000_000 {
		t.Fatalf("t_us = %d, want 3000000", ev.TUS)
	}
	if ev.Time() != 3*time.Second {
		t.Fatalf("Time() = %v", ev.Time())
	}
	if ev.Node != 2 || ev.Actor != "rank9" || ev.Chunk != "psi" || ev.Bytes != 4096 {
		t.Fatalf("event scope mangled: %+v", ev)
	}

	var buf bytes.Buffer
	if err := o.WriteEventsJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	lines := 0
	for sc.Scan() {
		var decoded Event
		if err := json.Unmarshal(sc.Bytes(), &decoded); err != nil {
			t.Fatalf("line %d not JSON: %v", lines, err)
		}
		if decoded.Type != EvChunkStaged || decoded.Attrs["k"] != "v" {
			t.Fatalf("round trip mangled: %+v", decoded)
		}
		lines++
	}
	if lines != 1 {
		t.Fatalf("JSONL lines = %d, want 1", lines)
	}
	if o.EventCount(EvChunkStaged) != 1 || o.EventCount("") != 1 || o.EventCount(EvRestore) != 0 {
		t.Fatal("EventCount wrong")
	}
}

func TestWritePromFormat(t *testing.T) {
	o := New(sim.NewEnv())
	r := o.Recorder(0, "rank0")
	r.Add("commits", 2)
	r.SetGauge("precopy_hit_rate", 0.5)
	r.Observe("stage_secs", []float64{0, 1, 2}, 0.5)
	r.Observe("stage_secs", []float64{0, 1, 2}, 1.5)
	r.TimelineSet("fabric_bytes", Labels{"class": "ckpt"}, 100)

	var buf bytes.Buffer
	if err := o.Registry().WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE commits_total counter",
		"commits_total 2\n",
		`commits_total{actor="rank0",node="0"} 2`,
		"# TYPE precopy_hit_rate gauge",
		`stage_secs_bucket{actor="rank0",node="0",le="1"} 1`,
		`stage_secs_bucket{actor="rank0",node="0",le="+Inf"} 2`,
		`stage_secs_sum{actor="rank0",node="0"} 2`,
		`stage_secs_count{actor="rank0",node="0"} 2`,
		`fabric_bytes_cum{class="ckpt"} 100`,
		`fabric_bytes_steps{class="ckpt"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prom output missing %q:\n%s", want, out)
		}
	}
}

func TestFlatten(t *testing.T) {
	o := New(sim.NewEnv())
	r := o.Recorder(1, "rank1")
	r.Add("restores", 3)
	r.SetGauge("redirty_rate", 0.25)
	flat := o.Registry().Flatten()
	if flat["restores"] != 3 {
		t.Fatalf("cluster restores = %v", flat["restores"])
	}
	if flat[`restores{actor="rank1",node="1"}`] != 3 {
		t.Fatalf("scoped restores missing: %v", flat)
	}
	if flat[`redirty_rate{actor="rank1",node="1"}`] != 0.25 {
		t.Fatalf("gauge missing: %v", flat)
	}
}

func TestCheckpointRounds(t *testing.T) {
	events := []Event{
		{TUS: 50, Type: EvCheckpointCommit, Node: 0, Actor: "rank0", Bytes: 100,
			Attrs: map[string]string{"round": "0", "copied": "4", "skipped": "1", "dur_us": "2000000"}},
		{TUS: 40, Type: EvCheckpointCommit, Node: 0, Actor: "rank1", Bytes: 50,
			Attrs: map[string]string{"round": "0", "copied": "2", "skipped": "3", "dur_us": "1000000"}},
		{TUS: 90, Type: EvCheckpointCommit, Node: 1, Actor: "rank0", Bytes: 10,
			Attrs: map[string]string{"round": "1", "copied": "1", "skipped": "0", "dur_us": "500000"}},
		{TUS: 95, Type: EvChunkStaged, Node: 1}, // ignored
	}
	rounds := CheckpointRounds(events)
	if len(rounds) != 2 {
		t.Fatalf("rounds = %d, want 2", len(rounds))
	}
	r0 := rounds[0]
	if r0.Round != 0 || r0.Ranks != 2 || r0.BytesCopied != 150 ||
		r0.ChunksCopied != 6 || r0.ChunksSkipped != 4 {
		t.Fatalf("round 0 = %+v", r0)
	}
	if r0.StartUS != 40 {
		t.Fatalf("round 0 start = %d, want earliest 40", r0.StartUS)
	}
	if r0.DurSecs.Mean != 1.5 {
		t.Fatalf("round 0 mean dur = %v, want 1.5", r0.DurSecs.Mean)
	}
	if rounds[1].Round != 1 || rounds[1].Ranks != 1 {
		t.Fatalf("round 1 = %+v", rounds[1])
	}
}

func TestBuildReport(t *testing.T) {
	env := sim.NewEnv()
	o := New(env)
	r := o.Recorder(0, "rank0")
	env.Go("run", func(p *sim.Proc) {
		p.Sleep(time.Second)
		r.Emit(EvCheckpointCommit, "", 200, map[string]string{
			"round": "0", "copied": "2", "skipped": "0", "dur_us": "100000"})
		r.Add("ckpt_bytes", 200)
	})
	env.Run()

	rep := o.BuildReport("test-tool", map[string]int{"nodes": 2}, nil)
	if rep.Tool != "test-tool" || rep.EventCount != 1 {
		t.Fatalf("report header wrong: %+v", rep)
	}
	if len(rep.Checkpoints) != 1 || rep.Checkpoints[0].BytesCopied != 200 {
		t.Fatalf("checkpoints = %+v", rep.Checkpoints)
	}
	if rep.Metrics["ckpt_bytes"] != 200 {
		t.Fatalf("metrics = %v", rep.Metrics)
	}
	if rep.VirtualEndUS != 1_000_000 {
		t.Fatalf("virtual end = %d", rep.VirtualEndUS)
	}

	var buf bytes.Buffer
	if err := WriteReport(&buf, rep); err != nil {
		t.Fatal(err)
	}
	var decoded RunReport
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("report not JSON: %v", err)
	}
	if decoded.EventCount != 1 {
		t.Fatalf("decoded report = %+v", decoded)
	}
}

// TestConcurrentPublication drives one observer from many host goroutines —
// the experiments package runs whole simulations concurrently, so the bus,
// registry, and span recorder must be race-clean (run with -race).
func TestConcurrentPublication(t *testing.T) {
	o := New(sim.NewEnv())
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := o.Recorder(g, "worker")
			for i := 0; i < 200; i++ {
				r.Emit(EvChunkStaged, "c", 1, nil)
				r.Add("staged_chunks", 1)
				r.SetGauge("gauge", float64(i))
				r.Observe("hist", []float64{0, 100, 200}, float64(i))
				r.TimelineSet("tl", Labels{"g": "x"}, float64(i))
				r.Span("s", "c", 0, 0, time.Microsecond, nil)
			}
		}(g)
	}
	wg.Wait()
	if got := o.EventCount(EvChunkStaged); got != 1600 {
		t.Fatalf("events = %d, want 1600", got)
	}
	if got := o.Registry().Counter("staged_chunks", nil).Get(); got != 1600 {
		t.Fatalf("rollup = %d, want 1600", got)
	}
	if got := o.Spans().Len(); got != 1600 {
		t.Fatalf("spans = %d, want 1600", got)
	}
}

func TestHistogramCreationPanicsWithoutEdges(t *testing.T) {
	reg := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("histogram without edges did not panic")
		}
	}()
	reg.Histogram("h", nil, nil)
}

func TestRecorderChildCachesAndScopes(t *testing.T) {
	o := New(sim.NewEnv())
	r := o.Recorder(2, "lineage")
	a := r.Child("remote")
	b := r.Child("remote")
	if a != b {
		t.Fatal("Child is not cached: two calls returned distinct recorders")
	}
	if c := r.Child("local"); c == a {
		t.Fatal("distinct scopes share a child recorder")
	}
	a.Add("lineage_transitions", 3)
	reg := o.Registry()
	got := reg.Counter("lineage_transitions",
		Labels{"node": "2", "actor": "lineage", "scope": "remote"}).Get()
	if got != 3 {
		t.Fatalf("scoped child counter = %d, want 3", got)
	}
	if got := reg.Counter("lineage_transitions", nil).Get(); got != 3 {
		t.Fatalf("cluster rollup = %d, want 3", got)
	}
	var nilRec *Recorder
	if nilRec.Child("x") != nil {
		t.Fatal("nil recorder's Child is not nil")
	}
}

func TestEventTapSeesPublicationOrderAndProgress(t *testing.T) {
	env := sim.NewEnv()
	o := New(env)
	var tapped []Event
	o.SetEventTap(func(ev Event) { tapped = append(tapped, ev) })
	r := o.Recorder(0, "rank0")
	env.Go("emitter", func(p *sim.Proc) {
		r.Emit(EvChunkStaged, "a", 1, nil)
		p.Sleep(2 * time.Second)
		r.Emit(EvChunkCommit, "a", 1, nil)
	})
	env.Run()
	if len(tapped) != 2 || tapped[0].Type != EvChunkStaged || tapped[1].Type != EvChunkCommit {
		t.Fatalf("tap saw %+v", tapped)
	}
	if tapped[1].TUS != 2_000_000 {
		t.Fatalf("tap event not stamped: TUS = %d", tapped[1].TUS)
	}
	us, events := o.Progress()
	if us != 2_000_000 || events != 2 {
		t.Fatalf("Progress() = (%d, %d), want (2000000, 2)", us, events)
	}
}

func TestAddEventTapCoexistsAndSetReplaces(t *testing.T) {
	env := sim.NewEnv()
	o := New(env)
	var a, b int
	o.AddEventTap(func(Event) { a++ })
	o.AddEventTap(func(Event) { b++ })
	r := o.Recorder(0, "rank0")
	r.Emit(EvChunkStaged, "x", 1, nil)
	if a != 1 || b != 1 {
		t.Fatalf("additive taps saw (%d, %d) events, want (1, 1)", a, b)
	}
	// SetEventTap replaces everything previously attached.
	var c int
	o.SetEventTap(func(Event) { c++ })
	r.Emit(EvChunkCommit, "x", 1, nil)
	if a != 1 || b != 1 || c != 1 {
		t.Fatalf("after SetEventTap: (%d, %d, %d), want (1, 1, 1)", a, b, c)
	}
	// And nil detaches everything.
	o.SetEventTap(nil)
	o.AddEventTap(nil) // ignored
	r.Emit(EvChunkStaged, "y", 1, nil)
	if c != 1 {
		t.Fatalf("nil SetEventTap left a tap attached (c=%d)", c)
	}
}

func TestRegistrySnapshotMatchesFlatten(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("ckpt_bytes", nil).Add(100)
	reg.Counter("recovery_path", Labels{"tier": "local"}).Add(2)
	reg.Counter("recovery_path", Labels{"tier": "lost"}).Add(1)
	reg.Gauge("inflight", Labels{"node": "3"}).Set(7)

	flat := reg.Flatten()
	buf := reg.Snapshot(nil)
	got := make(map[string]float64, len(buf))
	for _, p := range buf {
		got[p.Name+p.Labels] = p.Value
	}
	if len(got) != len(flat) {
		t.Fatalf("Snapshot has %d points, Flatten %d", len(got), len(flat))
	}
	for k, v := range flat {
		if got[k] != v {
			t.Fatalf("Snapshot[%s] = %g, Flatten = %g", k, got[k], v)
		}
	}

	// The poll pattern: reuse the buffer, values update, no stale points.
	reg.Counter("ckpt_bytes", nil).Add(50)
	buf = reg.Snapshot(buf[:0])
	for _, p := range buf {
		if p.Name == "ckpt_bytes" && p.Value != 150 {
			t.Fatalf("reused-buffer snapshot stale: ckpt_bytes = %g", p.Value)
		}
	}
}

func TestObsTimelineWindow(t *testing.T) {
	reg := NewRegistry()
	tl := reg.Timeline("fabric_bytes", Labels{"class": "ckpt"})
	tl.Set(1*time.Second, 10)
	tl.Set(3*time.Second, 30)
	tl.Set(9*time.Second, 90)

	times, values := tl.Window(2*time.Second, 5*time.Second)
	if len(times) != 2 {
		t.Fatalf("window steps = %d, want value-at-start + one interior step", len(times))
	}
	if times[0] != 2*time.Second || values[0] != 10 {
		t.Fatalf("window start = (%v, %g), want the value in effect at start (2s, 10)", times[0], values[0])
	}
	if times[1] != 3*time.Second || values[1] != 30 {
		t.Fatalf("interior step = (%v, %g), want (3s, 30)", times[1], values[1])
	}
	if ts, _ := tl.Window(5*time.Second, 5*time.Second); ts != nil {
		t.Fatalf("empty range returned %v, want nil", ts)
	}
}

// BenchmarkRegistrySnapshot vs BenchmarkRegistryFlatten: the Snapshot path
// exists so pollers (the SLO flight recorder) avoid Flatten's per-call map
// build and string concatenation.
func benchRegistry() *Registry {
	reg := NewRegistry()
	for i := 0; i < 8; i++ {
		reg.Counter("counter_"+itoa(i), nil).Add(int64(i))
		reg.Counter("labeled", Labels{"node": itoa(i)}).Add(int64(i))
		reg.Gauge("gauge_"+itoa(i), nil).Set(float64(i))
	}
	return reg
}

func BenchmarkRegistrySnapshot(b *testing.B) {
	reg := benchRegistry()
	var buf []MetricPoint
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = reg.Snapshot(buf[:0])
	}
}

func BenchmarkRegistryFlatten(b *testing.B) {
	reg := benchRegistry()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = reg.Flatten()
	}
}
