package policy_test

import (
	"strings"
	"testing"

	"nvmcp/internal/core"
	"nvmcp/internal/policy"
)

// fakeLocal is a minimal LocalPolicy used to exercise Register itself.
type fakeLocal struct{}

func (fakeLocal) NewEngine(s *core.Store, o policy.LocalOptions) policy.LocalEngine { return nil }

func TestParseBuiltinNames(t *testing.T) {
	want := map[policy.Kind][]string{
		policy.KindLocal:  {"none", "cpc", "dcpc", "dcpcp"},
		policy.KindRemote: {"none", "buddy-burst", "buddy-precopy", "erasure"},
		policy.KindBottom: {"none", "pfs-drain"},
	}
	for kind, names := range want {
		for _, name := range names {
			e, err := policy.Parse(kind, name)
			if err != nil {
				t.Fatalf("Parse(%s, %q): %v", kind, name, err)
			}
			if e.Name != name || e.Kind != kind {
				t.Fatalf("Parse(%s, %q) = entry {%s, %s}", kind, name, e.Kind, e.Name)
			}
			if e.Description == "" {
				t.Errorf("%s policy %q has no description", kind, name)
			}
		}
	}
}

func TestParseEmptyMeansNone(t *testing.T) {
	for _, kind := range []policy.Kind{policy.KindLocal, policy.KindRemote, policy.KindBottom} {
		e, err := policy.Parse(kind, "")
		if err != nil {
			t.Fatalf("Parse(%s, \"\"): %v", kind, err)
		}
		if e.Name != "none" {
			t.Fatalf("Parse(%s, \"\") = %q, want none", kind, e.Name)
		}
	}
}

func TestParseUnknownListsValidNames(t *testing.T) {
	_, err := policy.Parse(policy.KindLocal, "bogus")
	if err == nil {
		t.Fatal("Parse accepted an unknown policy")
	}
	msg := err.Error()
	for _, want := range []string{`unknown local policy "bogus"`, "valid:", "dcpcp"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error %q missing %q", msg, want)
		}
	}
	// Names from other kinds must not leak into the suggestion.
	if strings.Contains(msg, "buddy-precopy") {
		t.Errorf("error %q lists remote policies for a local lookup", msg)
	}
}

func TestNamesRegistrationOrder(t *testing.T) {
	// Builtins register at init, before any test registrations, so they are
	// a prefix of the listing in their registration order.
	want := map[policy.Kind][]string{
		policy.KindLocal:  {"none", "cpc", "dcpc", "dcpcp"},
		policy.KindRemote: {"none", "buddy-burst", "buddy-precopy", "erasure"},
		policy.KindBottom: {"none", "pfs-drain"},
	}
	for kind, prefix := range want {
		got := policy.Names(kind)
		if len(got) < len(prefix) {
			t.Fatalf("Names(%s) = %v, want at least %v", kind, got, prefix)
		}
		for i, name := range prefix {
			if got[i] != name {
				t.Fatalf("Names(%s) = %v, want prefix %v", kind, got, prefix)
			}
		}
	}
}

func TestEntriesMatchNames(t *testing.T) {
	for _, kind := range []policy.Kind{policy.KindLocal, policy.KindRemote, policy.KindBottom} {
		names := policy.Names(kind)
		entries := policy.Entries(kind)
		if len(names) != len(entries) {
			t.Fatalf("Names(%s) has %d entries, Entries has %d", kind, len(names), len(entries))
		}
		for i, e := range entries {
			if e.Name != names[i] {
				t.Fatalf("Entries(%s)[%d] = %q, Names = %q", kind, i, e.Name, names[i])
			}
		}
	}
}

func TestTypedAccessors(t *testing.T) {
	if e, _ := policy.Parse(policy.KindLocal, "dcpcp"); e.Local() == nil {
		t.Error("local entry's Local() is nil")
	}
	if e, _ := policy.Parse(policy.KindRemote, "buddy-precopy"); e.Remote() == nil {
		t.Error("remote entry's Remote() is nil")
	}
	if e, _ := policy.Parse(policy.KindBottom, "pfs-drain"); e.Bottom() == nil {
		t.Error("bottom entry's Bottom() is nil")
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	policy.Register(policy.KindLocal, "test-dup", "first registration", fakeLocal{})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("duplicate Register did not panic")
		}
		if msg, _ := r.(string); !strings.Contains(msg, "test-dup") {
			t.Fatalf("panic %v does not name the duplicate", r)
		}
	}()
	policy.Register(policy.KindLocal, "test-dup", "second registration", fakeLocal{})
}

func TestRegisterWrongInterfacePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Register accepted a LocalPolicy under KindRemote")
		}
	}()
	policy.Register(policy.KindRemote, "test-wrong-kind", "", fakeLocal{})
}
