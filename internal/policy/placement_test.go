package policy

import (
	"testing"

	"nvmcp/internal/topo"
)

// fleet16 is 16 nodes over 1 provider × 4 zones × 2 racks (2 nodes/rack).
func fleet16(t *testing.T) *topo.Topology {
	t.Helper()
	tp, err := topo.Uniform(16, 1, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	return tp
}

func TestBuddyPlanNaiveIsPaperRing(t *testing.T) {
	tp := fleet16(t)
	plan, honored := BuddyPlan(tp, 16, PlacementNaive)
	if !honored {
		t.Error("naive placement asks for nothing, so it is honored")
	}
	for n, b := range plan {
		if b != (n+1)%16 {
			t.Fatalf("naive buddy[%d] = %d, want %d", n, b, (n+1)%16)
		}
	}
	// Block-contiguous layout: node 0's naive buddy shares its zone — the
	// vulnerability the spread plan removes.
	if !tp.SameDomain(topo.LevelZone, 0, plan[0]) {
		t.Error("expected the naive ring to co-locate node 0 with its buddy")
	}
}

func TestBuddyPlanSpreadCrossesZones(t *testing.T) {
	tp := fleet16(t)
	plan, honored := BuddyPlan(tp, 16, PlacementSpread)
	if !honored {
		t.Fatal("4 balanced zones must honor zone anti-affinity")
	}
	seen := make(map[int]int)
	for n, b := range plan {
		if b == n {
			t.Fatalf("node %d is its own buddy", n)
		}
		if tp.SameDomain(topo.LevelZone, n, b) {
			t.Errorf("spread buddy[%d]=%d shares the zone", n, b)
		}
		seen[b]++
	}
	// A ring: every node holds exactly one other node's copies.
	for n, c := range seen {
		if c != 1 {
			t.Errorf("node %d holds %d incoming buddies, want 1", n, c)
		}
	}
	if len(seen) != 16 {
		t.Errorf("%d distinct holders, want 16", len(seen))
	}
}

func TestBuddyPlanSingleZoneFallsBack(t *testing.T) {
	tp, err := topo.Uniform(8, 1, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	plan, honored := BuddyPlan(tp, 8, PlacementSpread)
	if honored {
		t.Error("a single-zone fleet cannot honor zone anti-affinity")
	}
	// The ring must still be a permutation covering everyone.
	seen := make(map[int]bool)
	for n, b := range plan {
		if b == n {
			t.Fatalf("node %d is its own buddy", n)
		}
		seen[b] = true
	}
	if len(seen) != 8 {
		t.Errorf("fallback ring covers %d holders, want 8", len(seen))
	}
}

func TestBuddyPlanNoTopology(t *testing.T) {
	plan, honored := BuddyPlan(nil, 4, PlacementSpread)
	if !honored {
		t.Error("no topology means no anti-affinity goal")
	}
	for n, b := range plan {
		if b != (n+1)%4 {
			t.Fatalf("buddy[%d] = %d", n, b)
		}
	}
}

func TestErasureGroupCount(t *testing.T) {
	cases := []struct{ nodes, group, want int }{
		{16, 0, 1},  // legacy single group
		{16, 16, 1}, // group covering everything
		{16, 4, 4},
		{16, 5, 3},  // 5+5+6: the remainder of 1 folds into the last group
		{10, 4, 3},  // 4+4+2
		{9, 4, 2},   // 4+5 (remainder 1 folded into the last)
		{3, 2, 1},   // one group of 3: the lone remainder folds in
		{16, 20, 1}, // group larger than the fleet clamps to one group
	}
	for _, c := range cases {
		if got := ErasureGroupCount(c.nodes, c.group); got != c.want {
			t.Errorf("ErasureGroupCount(%d, %d) = %d, want %d", c.nodes, c.group, got, c.want)
		}
	}
}

func TestErasureGroupsPlanSpread(t *testing.T) {
	tp := fleet16(t)
	groups, honored, err := ErasureGroupsPlan(tp, 16, 4, PlacementSpread)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 4 {
		t.Fatalf("%d groups, want 4", len(groups))
	}
	if !honored {
		t.Fatal("4 groups of 4 over 4 zones must be zone-disjoint")
	}
	covered := make(map[int]bool)
	for gi, members := range groups {
		if len(members) != 4 {
			t.Fatalf("group %d has %d members", gi, len(members))
		}
		zones := make(map[topo.Coord]bool)
		for _, m := range members {
			if covered[m] {
				t.Fatalf("node %d in two groups", m)
			}
			covered[m] = true
			zones[tp.Coord(m).Key(topo.LevelZone)] = true
		}
		if len(zones) != 4 {
			t.Errorf("group %d spans %d zones, want 4", gi, len(zones))
		}
	}
	if len(covered) != 16 {
		t.Fatalf("groups cover %d nodes", len(covered))
	}
}

func TestErasureGroupsPlanNaiveConsecutive(t *testing.T) {
	tp := fleet16(t)
	groups, honored, err := ErasureGroupsPlan(tp, 16, 4, PlacementNaive)
	if err != nil {
		t.Fatal(err)
	}
	if !honored {
		t.Error("naive asks for nothing, so it is honored")
	}
	if got := groups[0]; got[0] != 0 || got[3] != 3 {
		t.Errorf("naive group 0 = %v, want [0 1 2 3]", got)
	}
	// Consecutive ids share zones under the block layout — the naive plan
	// is *not* zone-disjoint, which is the point of the demo.
	zones := make(map[topo.Coord]bool)
	for _, m := range groups[0] {
		zones[tp.Coord(m).Key(topo.LevelZone)] = true
	}
	if len(zones) != 1 {
		t.Errorf("naive group 0 spans %d zones, expected 1 under the block layout", len(zones))
	}
}

func TestErasureGroupsPlanErrors(t *testing.T) {
	if _, _, err := ErasureGroupsPlan(nil, 1, 0, PlacementNaive); err == nil {
		t.Error("1 node accepted")
	}
	if _, _, err := ErasureGroupsPlan(nil, 8, 1, PlacementNaive); err == nil {
		t.Error("group size 1 accepted")
	}
}

func TestErasureGroupsPlanRemainderFolded(t *testing.T) {
	groups, _, err := ErasureGroupsPlan(nil, 9, 4, PlacementNaive)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 2 {
		t.Fatalf("%d groups, want 2", len(groups))
	}
	if len(groups[0]) != 4 || len(groups[1]) != 5 {
		t.Fatalf("group sizes %d/%d, want 4/5", len(groups[0]), len(groups[1]))
	}
}

func TestParsePlacement(t *testing.T) {
	if p, err := ParsePlacement(""); err != nil || p != PlacementSpread {
		t.Errorf("empty placement = %q, %v", p, err)
	}
	if p, err := ParsePlacement("naive"); err != nil || p != PlacementNaive {
		t.Errorf("naive = %q, %v", p, err)
	}
	if _, err := ParsePlacement("chaotic"); err == nil {
		t.Error("unknown placement accepted")
	}
}
