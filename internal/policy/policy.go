// Package policy is the registry behind the scenario layer: local pre-copy
// engines, remote checkpoint tiers (buddy replication, erasure parity) and
// bottom storage tiers (PFS drain) register small constructors under stable
// names, and the cluster composes a run by looking policies up instead of
// branching on scheme enums. New schemes plug in by registering here — no
// cluster, cmd, or experiment edits required.
package policy

import (
	"fmt"
	"strings"
	"time"

	"nvmcp/internal/core"
	"nvmcp/internal/interconnect"
	"nvmcp/internal/mem"
	"nvmcp/internal/obs"
	"nvmcp/internal/pfs"
	"nvmcp/internal/sim"
	"nvmcp/internal/topo"
)

// Kind separates the three policy namespaces.
type Kind int

const (
	// KindLocal names local pre-copy policies (none, cpc, dcpc, dcpcp).
	KindLocal Kind = iota
	// KindRemote names remote checkpoint tiers (none, buddy-precopy,
	// buddy-burst, erasure).
	KindRemote
	// KindBottom names bottom storage tiers (none, pfs-drain).
	KindBottom
)

func (k Kind) String() string {
	switch k {
	case KindLocal:
		return "local"
	case KindRemote:
		return "remote"
	default:
		return "bottom"
	}
}

// LocalOptions carries the per-rank knobs a local policy needs to build its
// engine.
type LocalOptions struct {
	// RateCap throttles background pre-copy in bytes/sec (0 = uncapped).
	RateCap float64
	// BWPerCore is the rank's effective NVM write bandwidth, used by the
	// DCPC threshold computation.
	BWPerCore float64
	// Rec publishes engine activity onto the run's observability bus.
	Rec *obs.Recorder
	// TraceLane is the rank's lane in trace timelines.
	TraceLane int
}

// LocalEngine is the per-rank local checkpoint engine contract the cluster
// drives; *precopy.Engine satisfies it.
type LocalEngine interface {
	// BeginInterval (re)arms the engine at the start of a checkpoint interval.
	BeginInterval(p *sim.Proc)
	// OnCheckpoint informs the engine a coordinated checkpoint committed.
	OnCheckpoint(ckptStart time.Duration)
	// Quiesce blocks until in-flight background work settles before the
	// coordinated checkpoint entry.
	Quiesce(p *sim.Proc)
	// Stop terminates background activity.
	Stop()
}

// LocalPolicy builds one engine per rank store.
type LocalPolicy interface {
	NewEngine(s *core.Store, o LocalOptions) LocalEngine
}

// RemoteRuntime is the machine surface a remote tier builds on.
type RemoteRuntime struct {
	Env    *sim.Env
	Fabric *interconnect.Fabric
	// NVMs holds every fabric node's NVM device, compute nodes first and
	// any tier-requested extra nodes (ExtraNodes) after them.
	NVMs []*mem.Device
	// ComputeNodes is how many nodes run application ranks; extra nodes
	// (e.g. an erasure parity holder) index from ComputeNodes upward.
	ComputeNodes int
	// Topo carries the fleet's failure-domain coordinates, or nil when the
	// scenario assigned none. Tiers use it for anti-affinity placement.
	Topo *topo.Topology
	// Recorder mints per-(node, actor) observability recorders.
	Recorder func(node int, actor string) *obs.Recorder
}

// RemoteOptions carries the remote tier's tuning knobs.
type RemoteOptions struct {
	// RateCap throttles incremental shipping in bytes/sec (0 = uncapped).
	RateCap float64
	// Delay holds incremental shipping until this long into each remote
	// interval.
	Delay time.Duration
	// Group hints the redundancy group size (erasure parity group; 0 = all
	// compute nodes).
	Group int
	// Placement selects replica placement over the fleet topology:
	// PlacementSpread (the default) enforces zone anti-affinity,
	// PlacementNaive keeps the paper's consecutive-id layout.
	Placement string
}

// RemoteTier is the cluster's view of a running remote checkpoint level.
type RemoteTier interface {
	// BeginEpoch resets per-epoch machinery (helper agents, trigger state)
	// before ranks spawn; called again after every failure recovery.
	BeginEpoch()
	// Register adds a freshly attached rank store on a node, in rank order.
	Register(node int, s *core.Store)
	// BeginInterval marks the start of a remote checkpoint interval on a node.
	BeginInterval(node int)
	// Trigger starts a remote checkpoint for a node's data; the returned
	// completion fires at remote commit. The application does not block on it.
	Trigger(p *sim.Proc, node int) *sim.Completion
	// Fetch recovers one chunk of a hard-failed node (slot is the rank's
	// position within its node). seq is the served copy's staged generation
	// for lineage tracing — 0 when the tier cannot know it (erasure
	// reconstruction). ok is false when the tier cannot serve the chunk.
	Fetch(p *sim.Proc, node, slot int, procName string, id uint64) (data []byte, size int64, seq uint64, ok bool)
	// Utilization reports the tier's helper busy fractions (Table V).
	Utilization(now time.Duration) []float64
	// DrainSource exposes a holder node's committed objects for the bottom
	// tier, or nil when that node holds nothing drainable.
	DrainSource(holder int) pfs.Source
	// HolderOf reports which fabric node physically holds a node's remote
	// copies, or -1 when the tier has no single holder (erasure spreads
	// data across the group).
	HolderOf(node int) int
	// NodeFailed tells the tier a node just died; hard means its NVM — and
	// any remote copies it held for others — are gone. Helpers shipping
	// toward it back off, retry, and fail over until NodeRecovered.
	NodeFailed(node int, hard bool)
	// NodeRecovered marks the node's replacement hardware live again.
	NodeRecovered(node int)
	// Shutdown stops tier processes so the event queue can drain.
	Shutdown()
}

// RemotePolicy builds a remote tier for a run.
type RemotePolicy interface {
	// ExtraNodes is how many non-compute fabric nodes the tier needs (e.g.
	// one parity holder per erasure group); it may depend on the options
	// (the erasure group size sets the group count).
	ExtraNodes(computeNodes int, o RemoteOptions) int
	// NewTier builds the tier; a nil tier (with nil error) disables the
	// remote level entirely (the "none" policy).
	NewTier(rt RemoteRuntime, o RemoteOptions) (RemoteTier, error)
}

// ShardLocalPolicy is an optional capability a RemotePolicy implements to
// declare that its tier's data flows stay inside any contiguous node group a
// partitioned cluster builds it over (each group instantiates its own tier,
// so e.g. the buddy ring is re-rung within the group). The sharded engine
// only partitions runs whose remote policy advertises this; everything else
// falls back to the serial engine.
type ShardLocalPolicy interface {
	// ShardLocal reports whether per-group tier instances are equivalent to
	// one global instance for this policy.
	ShardLocal() bool
	// MinShardNodes is the smallest node group the tier still functions in
	// (a buddy ring needs two nodes; a disabled tier runs with one).
	MinShardNodes() int
}

// BottomOptions tunes the bottom storage tier.
type BottomOptions struct {
	AggregateBW float64
	StripeBW    float64
}

// BottomTier drains committed remote objects to the hierarchy's bottom level
// and serves them back during recovery.
type BottomTier interface {
	Drain(p *sim.Proc, src pfs.Source) pfs.DrainStats
	// Fetch reads a drained object ("<proc>/<chunkName>") back — the last
	// rung of the per-chunk recovery cascade, used when both the local
	// version and the remote copy are gone. seq is the object's stored
	// version (the staged generation the drain captured).
	Fetch(p *sim.Proc, name string) (data []byte, size int64, seq uint64, ok bool)
}

// BottomPolicy builds a bottom tier; a nil tier disables the level.
type BottomPolicy interface {
	NewTier(env *sim.Env, o BottomOptions) (BottomTier, error)
}

// Entry is one registered policy.
type Entry struct {
	Kind        Kind
	Name        string
	Description string
	impl        any
}

// Local returns the entry's LocalPolicy (panics on kind mismatch).
func (e *Entry) Local() LocalPolicy { return e.impl.(LocalPolicy) }

// Remote returns the entry's RemotePolicy (panics on kind mismatch).
func (e *Entry) Remote() RemotePolicy { return e.impl.(RemotePolicy) }

// Bottom returns the entry's BottomPolicy (panics on kind mismatch).
func (e *Entry) Bottom() BottomPolicy { return e.impl.(BottomPolicy) }

var (
	registry = map[Kind]map[string]*Entry{}
	ordered  = map[Kind][]*Entry{}
)

// Register adds a policy under a kind and name; duplicate names panic at init
// time. impl must implement the kind's policy interface.
func Register(kind Kind, name, description string, impl any) {
	switch kind {
	case KindLocal:
		impl = impl.(LocalPolicy)
	case KindRemote:
		impl = impl.(RemotePolicy)
	case KindBottom:
		impl = impl.(BottomPolicy)
	default:
		panic(fmt.Sprintf("policy: unknown kind %d", kind))
	}
	if registry[kind] == nil {
		registry[kind] = map[string]*Entry{}
	}
	if _, dup := registry[kind][name]; dup {
		panic(fmt.Sprintf("policy: duplicate %s policy %q", kind, name))
	}
	e := &Entry{Kind: kind, Name: name, Description: description, impl: impl}
	registry[kind][name] = e
	ordered[kind] = append(ordered[kind], e)
}

// Parse resolves a policy name within a kind. The empty string means "none".
// Unknown names produce an error listing every valid name.
func Parse(kind Kind, name string) (*Entry, error) {
	if name == "" {
		name = "none"
	}
	e, ok := registry[kind][name]
	if !ok {
		return nil, fmt.Errorf("unknown %s policy %q (valid: %s)",
			kind, name, strings.Join(Names(kind), ", "))
	}
	return e, nil
}

// Names lists a kind's policy names in registration order.
func Names(kind Kind) []string {
	out := make([]string, 0, len(ordered[kind]))
	for _, e := range ordered[kind] {
		out = append(out, e.Name)
	}
	return out
}

// Entries lists a kind's registered policies in registration order.
func Entries(kind Kind) []*Entry {
	return append([]*Entry(nil), ordered[kind]...)
}
