package policy

import (
	"fmt"

	"time"

	"nvmcp/internal/core"
	"nvmcp/internal/erasure"
	"nvmcp/internal/obs"
	"nvmcp/internal/pfs"
	"nvmcp/internal/precopy"
	"nvmcp/internal/remote"
	"nvmcp/internal/sim"
	"nvmcp/internal/topo"
	"nvmcp/internal/trace"
)

func init() {
	Register(KindLocal, "none",
		"no background pre-copy; the blocking checkpoint copies everything",
		localPolicy{precopy.NoPreCopy})
	Register(KindLocal, "cpc",
		"continuous pre-copy: chunks copied as soon as they are modified",
		localPolicy{precopy.CPC})
	Register(KindLocal, "dcpc",
		"delayed pre-copy: copies start at the adaptive threshold T_p",
		localPolicy{precopy.DCPC})
	Register(KindLocal, "dcpcp",
		"delayed pre-copy plus per-chunk modification prediction (the paper's best)",
		localPolicy{precopy.DCPCP})

	Register(KindRemote, "none",
		"no remote checkpoint level",
		noneRemote{})
	Register(KindRemote, "buddy-burst",
		"buddy replication, shipping everything at the remote checkpoint point",
		buddyPolicy{remote.AsyncBurst})
	Register(KindRemote, "buddy-precopy",
		"buddy replication with incremental pre-copy shipping ahead of the trigger",
		buddyPolicy{remote.PreCopy})
	Register(KindRemote, "erasure",
		"XOR parity group on a dedicated parity node instead of full buddy copies",
		erasurePolicy{})

	Register(KindBottom, "none",
		"no bottom storage level",
		noneBottom{})
	Register(KindBottom, "pfs-drain",
		"drain committed remote copies to a parallel file system",
		pfsDrainPolicy{})
}

// localPolicy adapts precopy.New to the LocalPolicy interface.
type localPolicy struct{ scheme precopy.Scheme }

func (lp localPolicy) NewEngine(s *core.Store, o LocalOptions) LocalEngine {
	return precopy.New(s, precopy.Config{
		Scheme:    lp.scheme,
		RateCap:   o.RateCap,
		BWPerCore: o.BWPerCore,
		Rec:       o.Rec,
		TraceLane: o.TraceLane,
	})
}

// noneRemote disables the remote level by building a nil tier.
type noneRemote struct{}

func (noneRemote) ExtraNodes(int, RemoteOptions) int                        { return 0 }
func (noneRemote) NewTier(RemoteRuntime, RemoteOptions) (RemoteTier, error) { return nil, nil }

// A disabled remote level trivially stays inside any node group.
func (noneRemote) ShardLocal() bool   { return true }
func (noneRemote) MinShardNodes() int { return 1 }

// noneBottom disables the bottom level by building a nil tier.
type noneBottom struct{}

func (noneBottom) NewTier(*sim.Env, BottomOptions) (BottomTier, error) { return nil, nil }

// buddyPolicy is the paper's remote level: each node's helper ships chunks to
// a buddy node holding a two-version copy (remote.Mesh + per-node Agents).
type buddyPolicy struct{ scheme remote.Scheme }

func (buddyPolicy) ExtraNodes(int, RemoteOptions) int { return 0 }

// The buddy ring is rung over whatever node set the tier is built with
// (spread placement rings over the group's own sub-topology), so a
// partitioned cluster that builds one tier per node group keeps every ship
// intra-group; a ring needs at least two nodes to have a buddy.
func (buddyPolicy) ShardLocal() bool   { return true }
func (buddyPolicy) MinShardNodes() int { return 2 }

func (bp buddyPolicy) NewTier(rt RemoteRuntime, o RemoteOptions) (RemoteTier, error) {
	if o.Group != 0 {
		return nil, fmt.Errorf("buddy policies take no redundancy group size (got %d)", o.Group)
	}
	placement, err := ParsePlacement(o.Placement)
	if err != nil {
		return nil, err
	}
	plan, honored := BuddyPlan(rt.Topo, rt.ComputeNodes, placement)
	mesh := remote.NewMesh(rt.Env, rt.Fabric, rt.NVMs)
	mesh.SetRecorder(rt.Recorder(0, "mesh"))
	return &buddyTier{rt: rt, o: o, scheme: bp.scheme, mesh: mesh,
		placement: placement, plan: plan, honored: honored}, nil
}

type buddyTier struct {
	rt     RemoteRuntime
	o      RemoteOptions
	scheme remote.Scheme
	mesh   *remote.Mesh

	placement string
	plan      []int // buddy[n]: who holds node n's remote copies
	honored   bool
	warned    bool
}

// BuddyMesh unwraps a buddy tier's remote.Mesh for callers that need the
// lower-level surface (counters, drain sources, restart experiments); nil for
// any other tier.
func BuddyMesh(t RemoteTier) *remote.Mesh {
	if bt, ok := t.(*buddyTier); ok {
		return bt.mesh
	}
	return nil
}

func (t *buddyTier) BeginEpoch() {
	if !t.honored && !t.warned {
		t.warned = true
		t.rt.Recorder(0, "placement").Emit(obs.EvEngineWarn,
			"zone anti-affinity not satisfiable for buddy ring; replicas spread at best effort", 0,
			map[string]string{"placement": "buddy/" + t.placement, "fallback": "true"})
	}
	for n := 0; n < t.rt.ComputeNodes; n++ {
		t.mesh.RemoveAgent(n)
		t.mesh.AddAgent(n, t.plan[n], remote.Config{
			Scheme:  t.scheme,
			RateCap: t.o.RateCap,
			Delay:   t.o.Delay,
			Rec:     t.rt.Recorder(n, "helper"),
		})
	}
}

// SupportSets: node n's remote recovery depends on its planned buddy.
func (t *buddyTier) SupportSets() [][]int {
	out := make([][]int, t.rt.ComputeNodes)
	for n := range out {
		out[n] = []int{t.plan[n]}
	}
	return out
}

func (t *buddyTier) PlacementHonored() bool { return t.honored }
func (t *buddyTier) PlacementDesc() string  { return "buddy/" + t.placement }

// Replan re-rings the buddy plan so none of the avoided nodes holds remote
// copies; the next BeginEpoch rebuilds the agents from the new plan and the
// mesh's per-holder residency makes re-homed copies re-ship in full.
func (t *buddyTier) Replan(avoid []int) bool {
	plan := BuddyReplan(t.rt.Topo, t.rt.ComputeNodes, t.placement, avoid)
	if plan == nil {
		return false
	}
	changed := false
	for n := range plan {
		if plan[n] != t.plan[n] {
			changed = true
			break
		}
	}
	if !changed {
		return false
	}
	t.plan = plan
	if t.rt.Topo != nil {
		t.honored = true
		for n := 0; n < t.rt.ComputeNodes; n++ {
			if t.rt.Topo.SameDomain(topo.LevelZone, n, t.plan[n]) {
				t.honored = false
			}
		}
	}
	return true
}

func (t *buddyTier) Register(node int, s *core.Store) { t.mesh.Agent(node).Register(s) }
func (t *buddyTier) BeginInterval(node int)           { t.mesh.Agent(node).BeginRemoteInterval() }

func (t *buddyTier) Trigger(p *sim.Proc, node int) *sim.Completion {
	return t.mesh.Agent(node).TriggerRemote(p)
}

func (t *buddyTier) Fetch(p *sim.Proc, node, slot int, procName string, id uint64) ([]byte, int64, uint64, bool) {
	return t.mesh.Fetch(p, node, procName, id)
}

func (t *buddyTier) Utilization(now time.Duration) []float64 {
	var out []float64
	for n := 0; n < t.rt.ComputeNodes; n++ {
		if a := t.mesh.Agent(n); a != nil {
			out = append(out, a.Meter.Utilization(now))
		}
	}
	return out
}

func (t *buddyTier) DrainSource(holder int) pfs.Source {
	if holder < 0 || holder >= t.rt.ComputeNodes {
		return nil
	}
	return pfs.MeshSource{Mesh: t.mesh, Holder: holder}
}

func (t *buddyTier) HolderOf(node int) int {
	return t.mesh.HolderOf(node)
}

func (t *buddyTier) NodeFailed(node int, hard bool) {
	// The node's helper dies with it; other helpers see the liveness flag
	// and back off or fail over. A hard failure also takes the remote
	// copies the node was holding for its own buddy-source.
	t.mesh.RemoveAgent(node)
	t.mesh.SetNodeDown(node, true)
	if hard {
		t.mesh.DropNode(node)
	}
}

func (t *buddyTier) NodeRecovered(node int) { t.mesh.SetNodeDown(node, false) }

func (t *buddyTier) Shutdown() {
	for n := 0; n < t.rt.ComputeNodes; n++ {
		t.mesh.RemoveAgent(n)
	}
}

// erasurePolicy composes the erasure package as a remote tier: XOR parity
// groups over the compute nodes, each group's parity held on its own extra
// fabric node. Group 0 keeps the legacy single group over everything;
// spread placement deals group members across zones so a zone loss costs
// at most one member per group — the single loss XOR parity tolerates.
type erasurePolicy struct{}

func (erasurePolicy) ExtraNodes(computeNodes int, o RemoteOptions) int {
	return ErasureGroupCount(computeNodes, o.Group)
}

func (erasurePolicy) NewTier(rt RemoteRuntime, o RemoteOptions) (RemoteTier, error) {
	placement, err := ParsePlacement(o.Placement)
	if err != nil {
		return nil, err
	}
	plan, honored, err := ErasureGroupsPlan(rt.Topo, rt.ComputeNodes, o.Group, placement)
	if err != nil {
		return nil, err
	}
	t := &erasureTier{
		rt:        rt,
		cur:       make(map[int][]*core.Store),
		groupOf:   make([]int, rt.ComputeNodes),
		rec:       rt.Recorder(rt.ComputeNodes, "parity"),
		placement: placement,
		honored:   honored,
	}
	for gi, members := range plan {
		parityNode := rt.ComputeNodes + gi // the tier-requested extra fabric nodes
		t.groups = append(t.groups, erasure.NewGroup(rt.Env, rt.Fabric, rt.NVMs, members, parityNode))
		for _, m := range members {
			t.groupOf[m] = gi
		}
	}
	t.active = make([]*sim.Completion, len(t.groups))
	t.meters = make([]trace.Meter, len(t.groups))
	return t, nil
}

type erasureTier struct {
	rt      RemoteRuntime
	groups  []*erasure.Group
	groupOf []int // compute node -> index into groups
	rec     *obs.Recorder

	placement string
	honored   bool
	warned    bool

	// cur collects the epoch's store registrations; they are flushed into
	// the groups only at the first Trigger, so a post-failure recovery can
	// still reconstruct from the previous epoch's survivor stores.
	cur     map[int][]*core.Store
	flushed bool

	// active is each group's in-flight parity round completion, shared by
	// every member's trigger in that round.
	active []*sim.Completion

	// meters track per-group parity-build busy time (helper utilization).
	meters []trace.Meter
}

func (t *erasureTier) BeginEpoch() {
	if !t.honored && !t.warned {
		t.warned = true
		t.rt.Recorder(0, "placement").Emit(obs.EvEngineWarn,
			"zone anti-affinity not satisfiable for erasure groups; members spread at best effort", 0,
			map[string]string{"placement": "erasure/" + t.placement, "fallback": "true"})
	}
	t.cur = make(map[int][]*core.Store)
	t.flushed = false
	for gi, done := range t.active {
		if done != nil {
			// A round abandoned by a failure must not strand the driver's
			// end-of-run await.
			done.Complete()
			t.active[gi] = nil
		}
	}
}

func (t *erasureTier) Register(node int, s *core.Store) {
	t.cur[node] = append(t.cur[node], s)
}

func (t *erasureTier) BeginInterval(int) {}

func (t *erasureTier) Trigger(p *sim.Proc, node int) *sim.Completion {
	if !t.flushed {
		for m, ss := range t.cur {
			t.groups[t.groupOf[m]].SetStores(m, ss)
		}
		t.flushed = true
	}
	gi := t.groupOf[node]
	if t.active[gi] != nil && !t.active[gi].Completed() {
		// The group's parity round is already draining; this node's trigger
		// joins it (all leaders trigger at the same coordinated checkpoint).
		return t.active[gi]
	}
	done := sim.NewCompletion(t.rt.Env)
	t.active[gi] = done
	g := t.groups[gi]
	t.rt.Env.Go(fmt.Sprintf("parity%d/commit", gi), func(pp *sim.Proc) {
		t.meters[gi].Start(pp.Now())
		err := g.CommitParity(pp)
		t.meters[gi].Stop(pp.Now())
		if err != nil {
			// A failure mid-round leaves stores unreadable; the round is
			// simply lost, like an abandoned buddy burst.
			t.rec.Emit(obs.EvHelperSleep, "parity round abandoned", 0,
				map[string]string{"err": err.Error(), "group": fmt.Sprintf("%d", gi)})
		} else {
			t.rec.Emit(obs.EvRemoteCommit, "", 0,
				map[string]string{"round": fmt.Sprintf("%d", g.Round()), "group": fmt.Sprintf("%d", gi)})
		}
		done.Complete()
	})
	return done
}

func (t *erasureTier) Fetch(p *sim.Proc, node, slot int, procName string, id uint64) ([]byte, int64, uint64, bool) {
	data, size, err := t.groups[t.groupOf[node]].FetchChunk(p, node, slot, id)
	if err != nil {
		return nil, 0, 0, false
	}
	t.rec.Add("remote_fetches", 1)
	// Parity reconstruction rebuilds bytes, not metadata: the staged
	// generation is unknown (seq 0), and the lineage checker treats it so.
	return data, size, 0, true
}

func (t *erasureTier) Utilization(now time.Duration) []float64 {
	out := make([]float64, len(t.meters))
	for i := range t.meters {
		out[i] = t.meters[i].Utilization(now)
	}
	return out
}

func (t *erasureTier) DrainSource(int) pfs.Source { return nil }

// HolderOf returns -1: parity fragments are spread over the group, so no
// single fabric node holds a node's remote state.
func (t *erasureTier) HolderOf(int) int { return -1 }

func (t *erasureTier) NodeFailed(int, bool) {}
func (t *erasureTier) NodeRecovered(int)    {}

func (t *erasureTier) Shutdown() {
	for _, done := range t.active {
		if done != nil {
			done.Complete()
		}
	}
}

// SupportSets: reconstructing node n needs every other member of its group
// plus the group's parity holder (which lives outside the failure domains).
func (t *erasureTier) SupportSets() [][]int {
	out := make([][]int, t.rt.ComputeNodes)
	for n := range out {
		g := t.groups[t.groupOf[n]]
		set := []int{t.rt.ComputeNodes + t.groupOf[n]}
		for _, m := range g.Members() {
			if m != n {
				set = append(set, m)
			}
		}
		out[n] = set
	}
	return out
}

func (t *erasureTier) PlacementHonored() bool { return t.honored }
func (t *erasureTier) PlacementDesc() string  { return "erasure/" + t.placement }

// pfsDrainPolicy builds the PFS bottom tier.
type pfsDrainPolicy struct{}

func (pfsDrainPolicy) NewTier(env *sim.Env, o BottomOptions) (BottomTier, error) {
	return &pfsTier{fs: pfs.New(env, o.AggregateBW, o.StripeBW)}, nil
}

type pfsTier struct{ fs *pfs.FS }

func (t *pfsTier) Drain(p *sim.Proc, src pfs.Source) pfs.DrainStats {
	return t.fs.Drain(p, src)
}

func (t *pfsTier) Fetch(p *sim.Proc, name string) ([]byte, int64, uint64, bool) {
	data, size, version, err := t.fs.Read(p, name)
	if err != nil {
		return nil, 0, 0, false
	}
	return data, size, version, true
}

// PFSOf unwraps a pfs tier's file system for result shaping; nil otherwise.
func PFSOf(t BottomTier) *pfs.FS {
	if pt, ok := t.(*pfsTier); ok {
		return pt.fs
	}
	return nil
}
