package policy

import (
	"testing"
	"time"

	"nvmcp/internal/sim"
)

func TestDrainGateDisabledIsNil(t *testing.T) {
	if g := NewDrainGate(sim.NewEnv(), StaggerSpec{}); g != nil {
		t.Fatalf("disabled spec built a gate: %+v", g)
	}
	if (StaggerSpec{MaxConcurrent: 2}).Enabled() != true {
		t.Fatal("MaxConcurrent alone must enable staggering")
	}
	if (StaggerSpec{Slot: time.Second}).Enabled() != true {
		t.Fatal("Slot alone must enable staggering")
	}
}

func TestDrainGateCapsConcurrencyFIFO(t *testing.T) {
	env := sim.NewEnv()
	g := NewDrainGate(env, StaggerSpec{MaxConcurrent: 2})
	var inflight, peak int
	var order []int
	for i := 0; i < 6; i++ {
		env.Go("drain", func(p *sim.Proc) {
			g.Acquire(p)
			order = append(order, i)
			inflight++
			if inflight > peak {
				peak = inflight
			}
			p.Sleep(time.Second)
			inflight--
			g.Release()
		})
	}
	env.Run()
	if peak != 2 {
		t.Fatalf("peak concurrent drains = %d, want exactly 2", peak)
	}
	if g.Grants != 6 {
		t.Fatalf("grants = %d, want 6", g.Grants)
	}
	if g.MaxQueued < 3 {
		t.Fatalf("max queued = %d, want >= 3 (four waiters behind two tokens)", g.MaxQueued)
	}
	for i, got := range order {
		if got != i {
			t.Fatalf("grant order %v is not FIFO", order)
		}
	}
}

func TestDrainGateSlotSpacing(t *testing.T) {
	env := sim.NewEnv()
	g := NewDrainGate(env, StaggerSpec{MaxConcurrent: 2, Slot: time.Second})
	var grants []time.Duration
	for i := 0; i < 4; i++ {
		env.Go("drain", func(p *sim.Proc) {
			g.Acquire(p)
			grants = append(grants, p.Now())
			p.Sleep(3 * time.Second)
			g.Release()
		})
	}
	env.Run()
	if len(grants) != 4 {
		t.Fatalf("got %d grants, want 4", len(grants))
	}
	for i := 1; i < len(grants); i++ {
		if gap := grants[i] - grants[i-1]; gap < time.Second {
			t.Fatalf("grants %v: gap %v between #%d and #%d violates the 1s slot",
				grants, gap, i-1, i)
		}
	}
}
