package policy

import (
	"fmt"

	"nvmcp/internal/topo"
)

// Placement names for RemoteOptions.Placement.
const (
	// PlacementSpread rings replicas over the topology's zone-interleaved
	// order, so every node's remote copy lands outside its own fault
	// domain. The default whenever a fleet topology exists.
	PlacementSpread = "spread"
	// PlacementNaive is the paper's original layout: buddy = (n+1) mod N,
	// erasure groups over consecutive node ids. Under a block-contiguous
	// fleet that puts a node and its replica in the same rack — kept as an
	// explicit opt-in so the survivability loss is demonstrable.
	PlacementNaive = "naive"
)

// ParsePlacement resolves a scenario placement string; empty means spread.
func ParsePlacement(s string) (string, error) {
	switch s {
	case "":
		return PlacementSpread, nil
	case PlacementSpread, PlacementNaive:
		return s, nil
	}
	return "", fmt.Errorf("policy: unknown placement %q (want %s or %s)", s, PlacementSpread, PlacementNaive)
}

// PlacementInfo is an optional capability a RemoteTier implements so the
// survivability analysis can reason about where replicas live. SupportSets
// describes the *planned* placement of the current topology (failover may
// re-home copies mid-run; the analysis is about the design point).
type PlacementInfo interface {
	// SupportSets returns, per compute node, the fabric nodes its remote
	// recovery depends on: the buddy for replication, the other group
	// members plus the parity holder for erasure. Nodes at or beyond the
	// topology size (parity holders, the PFS) belong to no failure domain.
	SupportSets() [][]int
	// PlacementHonored reports whether the anti-affinity goal (every
	// support node outside the primary's zone) was satisfiable.
	PlacementHonored() bool
	// PlacementDesc names the effective placement, e.g. "buddy/spread".
	PlacementDesc() string
}

// Replanner is an optional capability a RemoteTier implements so the
// cluster (or a control plane) can re-home replica placement after a
// correlated failure: Replan recomputes the tier's plan so that none of the
// avoided nodes holds anyone's remote copies. The new plan takes effect at
// the next BeginEpoch (the epoch respawn that follows recovery rebuilds the
// helper agents from it); per-holder residency tracking means re-homed
// copies fully re-ship on the next trigger.
type Replanner interface {
	// Replan reports whether the plan changed. It returns false when the
	// avoid set leaves too few candidate holders to re-ring.
	Replan(avoid []int) bool
}

// BuddyPlan computes the buddy ring over nodes compute nodes. Under
// PlacementSpread with a topology it rings over topo.SpreadOrder, so a
// node's buddy sits in a different zone whenever the fleet has more than
// one; honored reports whether that anti-affinity held for every node
// (a single-zone fleet still spreads racks but reports honored=false).
// Naive placement — or no topology — is the paper's (n+1) mod N ring,
// which trivially honors its (empty) goal.
func BuddyPlan(t *topo.Topology, nodes int, placement string) (buddy []int, honored bool) {
	buddy = make([]int, nodes)
	if placement != PlacementSpread || t == nil || nodes < 2 {
		for n := range buddy {
			buddy[n] = (n + 1) % nodes
		}
		return buddy, true
	}
	order := spreadOrderWithin(t, nodes)
	for i, n := range order {
		buddy[n] = order[(i+1)%len(order)]
	}
	honored = true
	for n := 0; n < nodes; n++ {
		if t.SameDomain(topo.LevelZone, n, buddy[n]) {
			honored = false
		}
	}
	return buddy, honored
}

// BuddyReplan recomputes a buddy ring avoiding the given nodes as holders:
// every node (including the avoided ones, which will recover and need a live
// buddy) is assigned the next non-avoided node along the placement order.
// Returns nil when fewer than two candidate holders remain — a ring needs a
// buddy distinct from its source for at least the avoided nodes' sources.
func BuddyReplan(t *topo.Topology, nodes int, placement string, avoid []int) []int {
	order := make([]int, nodes)
	for i := range order {
		order[i] = i
	}
	if placement == PlacementSpread && t != nil {
		order = spreadOrderWithin(t, nodes)
	}
	avoided := make(map[int]bool, len(avoid))
	for _, n := range avoid {
		avoided[n] = true
	}
	holders := 0
	for _, n := range order {
		if !avoided[n] {
			holders++
		}
	}
	if holders < 2 {
		return nil
	}
	pos := make(map[int]int, nodes)
	for i, n := range order {
		pos[n] = i
	}
	buddy := make([]int, nodes)
	for n := 0; n < nodes; n++ {
		j := pos[n]
		for k := 1; k <= len(order); k++ {
			cand := order[(j+k)%len(order)]
			if cand != n && !avoided[cand] {
				buddy[n] = cand
				break
			}
		}
	}
	return buddy
}

// ErasureGroupCount is how many parity groups (and so parity nodes) an
// erasure tier of the given group size builds over nodes compute nodes.
// group <= 0 keeps the legacy single group over everything; a remainder of
// one node is folded into the previous group (a group needs two members).
func ErasureGroupCount(nodes, group int) int {
	if group <= 0 || group >= nodes {
		return 1
	}
	n := nodes / group
	if nodes%group >= 2 {
		n++
	}
	return n
}

// ErasureGroupsPlan deals the compute nodes into parity groups of the given
// size. Under PlacementSpread the groups are consecutive blocks of the
// topology's zone-interleaved order, so a group's members sit in pairwise
// distinct zones whenever the fleet has enough of them — the property that
// makes a zone loss cost at most one member per group, which XOR parity
// survives. honored reports whether that held for every group. Members are
// returned ascending within each group.
func ErasureGroupsPlan(t *topo.Topology, nodes, group int, placement string) (groups [][]int, honored bool, err error) {
	if nodes < 2 {
		return nil, false, fmt.Errorf("erasure: needs at least 2 compute nodes, got %d", nodes)
	}
	if group == 1 {
		return nil, false, fmt.Errorf("erasure: a parity group needs at least two members (got group size 1)")
	}
	order := make([]int, nodes)
	for i := range order {
		order[i] = i
	}
	if placement == PlacementSpread && t != nil {
		order = spreadOrderWithin(t, nodes)
	}
	count := ErasureGroupCount(nodes, group)
	if count == 1 {
		group = nodes
	}
	groups = make([][]int, 0, count)
	for g := 0; g < count; g++ {
		lo := g * group
		hi := lo + group
		if g == count-1 {
			hi = nodes // the last group absorbs the remainder (or lone node)
		}
		groups = append(groups, sortedInts(order[lo:hi]))
	}
	honored = true
	for _, members := range groups {
		seen := map[topo.Coord]bool{}
		for _, m := range members {
			if t == nil {
				continue
			}
			k := t.Coord(m).Key(topo.LevelZone)
			if seen[k] {
				honored = false
			}
			seen[k] = true
		}
	}
	if t == nil || placement != PlacementSpread {
		honored = placement != PlacementSpread // naive asks for nothing; spread without topology cannot be honored
	}
	return groups, honored, nil
}

// spreadOrderWithin is the topology's spread order restricted to the first
// nodes ids (extra fabric nodes are placed by the tier, not the ring).
func spreadOrderWithin(t *topo.Topology, nodes int) []int {
	full := t.SpreadOrder()
	out := make([]int, 0, nodes)
	for _, n := range full {
		if n < nodes {
			out = append(out, n)
		}
	}
	// Topology smaller than the compute set: append the uncovered tail so
	// the ring still spans every node.
	for n := t.Nodes(); n < nodes; n++ {
		out = append(out, n)
	}
	return out
}

func sortedInts(in []int) []int {
	out := append([]int(nil), in...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
