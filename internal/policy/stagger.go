package policy

import (
	"time"

	"nvmcp/internal/sim"
)

// StaggerSpec configures drain staggering: instead of every node's remote
// drain bursting onto the fabric at the same coordinated-checkpoint instant,
// a gate admits at most MaxConcurrent node drains at once and spaces
// consecutive grants Slot apart. This caps the paper's Fig 9/10 peak-
// interconnect quantity (ckpt_window_bytes) at the cost of stretching the
// drain tail — the control plane's knob for trading latency against peak.
type StaggerSpec struct {
	// MaxConcurrent is how many node drains may be in flight at once.
	// Values below 1 are treated as 1.
	MaxConcurrent int
	// Slot is the minimum spacing between consecutive drain grants
	// (0 = no spacing beyond the concurrency cap).
	Slot time.Duration
}

// Enabled reports whether the spec asks for any staggering at all.
func (s StaggerSpec) Enabled() bool { return s.MaxConcurrent > 0 || s.Slot > 0 }

func (s StaggerSpec) maxConcurrent() int {
	if s.MaxConcurrent < 1 {
		return 1
	}
	return s.MaxConcurrent
}

// DrainGate is the virtual-time admission gate behind a StaggerSpec. It is
// sim-internal state (no host locking): Acquire parks the calling process on
// a FIFO of completions, and the single-threaded event engine makes grant
// order deterministic. Acquire must be called from a dedicated drain-admit
// process, never from an application rank — the rank's trigger point stays
// non-blocking, the admit process absorbs the queueing delay.
type DrainGate struct {
	env  *sim.Env
	spec StaggerSpec

	inflight  int
	granted   bool
	lastGrant time.Duration
	waiters   []*sim.Completion

	// Grants counts admissions; MaxQueued tracks the deepest backlog —
	// both surfaced on run results so the stagger's pressure is visible.
	Grants    int
	MaxQueued int
}

// NewDrainGate builds a gate for the spec; nil when staggering is disabled,
// so callers can gate on the pointer.
func NewDrainGate(env *sim.Env, spec StaggerSpec) *DrainGate {
	if !spec.Enabled() {
		return nil
	}
	return &DrainGate{env: env, spec: spec}
}

// Acquire blocks p until the gate admits one drain: a concurrency token is
// free and the previous grant is at least Slot old. Callers must Release
// exactly once per Acquire, after the drain completes.
func (g *DrainGate) Acquire(p *sim.Proc) {
	for g.inflight >= g.spec.maxConcurrent() {
		c := sim.NewCompletion(g.env)
		g.waiters = append(g.waiters, c)
		if n := len(g.waiters); n > g.MaxQueued {
			g.MaxQueued = n
		}
		c.Await(p)
	}
	g.inflight++
	// Hold the token while waiting out the grant spacing; concurrent
	// acquirers re-check after sleeping because an earlier waker moves
	// lastGrant forward.
	for g.spec.Slot > 0 && g.granted {
		next := g.lastGrant + g.spec.Slot
		if next <= p.Now() {
			break
		}
		p.Sleep(next - p.Now())
	}
	g.granted, g.lastGrant = true, p.Now()
	g.Grants++
}

// Release returns one token and wakes the head waiter, if any. Callable from
// process or scheduler context.
func (g *DrainGate) Release() {
	g.inflight--
	if len(g.waiters) > 0 {
		w := g.waiters[0]
		g.waiters = g.waiters[1:]
		w.Complete()
	}
}
