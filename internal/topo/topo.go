// Package topo models the physical layout of a fleet: every compute node
// carries a (provider, zone, rack) coordinate, and correlated failures —
// rack, zone or provider outages — take down whole coordinate prefixes at
// once. The package is deliberately tiny and dependency-free so that the
// fault injector, the cluster runtime and the placement policies can all
// share one notion of "failure domain" without import cycles.
//
// Coordinates are assigned block-contiguously: consecutive node ids fill a
// rack before spilling into the next, racks fill a zone, zones fill a
// provider. That mirrors how real fleets are cabled (and numbered), and it
// is exactly the layout under which the paper's naive ring-buddy placement
// (buddy = n+1) puts a node and its replica in the same rack — the failure
// mode topology-aware placement exists to fix.
package topo

import (
	"fmt"
	"sort"
)

// Level selects the granularity of a failure domain.
type Level int

const (
	LevelRack Level = iota
	LevelZone
	LevelProvider
)

// Levels returns all levels, coarsest last.
func Levels() []Level { return []Level{LevelRack, LevelZone, LevelProvider} }

func (l Level) String() string {
	switch l {
	case LevelRack:
		return "rack"
	case LevelZone:
		return "zone"
	case LevelProvider:
		return "provider"
	}
	return fmt.Sprintf("level(%d)", int(l))
}

// Coord is a node's position in the fleet. Finer fields are meaningless at
// coarser levels: a zone-level domain key has Rack zeroed.
type Coord struct {
	Provider int
	Zone     int
	Rack     int
}

// Key projects the coordinate onto a domain level, zeroing finer fields so
// the result can be compared or used as a map key.
func (c Coord) Key(l Level) Coord {
	switch l {
	case LevelProvider:
		return Coord{Provider: c.Provider}
	case LevelZone:
		return Coord{Provider: c.Provider, Zone: c.Zone}
	default:
		return c
	}
}

// Label renders the coordinate at a level, e.g. "p0/z1/r2".
func (c Coord) Label(l Level) string {
	switch l {
	case LevelProvider:
		return fmt.Sprintf("p%d", c.Provider)
	case LevelZone:
		return fmt.Sprintf("p%d/z%d", c.Provider, c.Zone)
	default:
		return fmt.Sprintf("p%d/z%d/r%d", c.Provider, c.Zone, c.Rack)
	}
}

// less orders coordinates lexicographically (provider, zone, rack).
func (c Coord) less(o Coord) bool {
	if c.Provider != o.Provider {
		return c.Provider < o.Provider
	}
	if c.Zone != o.Zone {
		return c.Zone < o.Zone
	}
	return c.Rack < o.Rack
}

// Topology maps every compute node to its coordinate. Nodes beyond the
// topology (erasure parity holders, the PFS) belong to no failure domain —
// they model independently-provisioned services that a rack or zone loss
// does not touch.
type Topology struct {
	coords []Coord
}

// New builds a topology from explicit per-node coordinates.
func New(coords []Coord) *Topology {
	return &Topology{coords: append([]Coord(nil), coords...)}
}

// Uniform lays out n nodes block-contiguously over providers × zonesPer
// zones × racksPer racks. Rack populations differ by at most one node.
func Uniform(n, providers, zonesPer, racksPer int) (*Topology, error) {
	if n < 1 {
		return nil, fmt.Errorf("topo: need at least 1 node, got %d", n)
	}
	if providers < 1 || zonesPer < 1 || racksPer < 1 {
		return nil, fmt.Errorf("topo: domain counts must be >= 1 (providers=%d zones_per_provider=%d racks_per_zone=%d)",
			providers, zonesPer, racksPer)
	}
	racks := providers * zonesPer * racksPer
	coords := make([]Coord, n)
	for i := range coords {
		// Deal node i into global rack i*racks/n: contiguous blocks whose
		// sizes differ by at most one, covering every rack when n >= racks.
		gr := i * racks / n
		if n < racks {
			gr = i // fewer nodes than racks: one node per rack, front-filled
		}
		coords[i] = Coord{
			Provider: gr / (zonesPer * racksPer),
			Zone:     (gr / racksPer) % zonesPer,
			Rack:     gr % racksPer,
		}
	}
	return New(coords), nil
}

// Nodes returns the number of nodes covered by the topology.
func (t *Topology) Nodes() int { return len(t.coords) }

// Coord returns node n's coordinate. Nodes outside the topology report a
// zero coordinate and Contains(n) == false.
func (t *Topology) Coord(n int) Coord {
	if !t.Contains(n) {
		return Coord{}
	}
	return t.coords[n]
}

// Contains reports whether node n has a coordinate (is failure-domain
// addressable). Extra fabric nodes — parity holders, the PFS — are not.
func (t *Topology) Contains(n int) bool { return n >= 0 && n < len(t.coords) }

// NodesIn returns the ascending node ids inside the domain key at level l.
func (t *Topology) NodesIn(l Level, key Coord) []int {
	key = key.Key(l)
	var out []int
	for n, c := range t.coords {
		if c.Key(l) == key {
			out = append(out, n)
		}
	}
	return out
}

// Has reports whether at least one node lives in the domain key at level l.
func (t *Topology) Has(l Level, key Coord) bool {
	key = key.Key(l)
	for _, c := range t.coords {
		if c.Key(l) == key {
			return true
		}
	}
	return false
}

// SameDomain reports whether nodes a and b share the level-l domain. Nodes
// outside the topology share no domain with anyone.
func (t *Topology) SameDomain(l Level, a, b int) bool {
	if !t.Contains(a) || !t.Contains(b) {
		return false
	}
	return t.coords[a].Key(l) == t.coords[b].Key(l)
}

// Domains returns the distinct level-l domain keys, sorted.
func (t *Topology) Domains(l Level) []Coord {
	seen := make(map[Coord]bool)
	var out []Coord
	for _, c := range t.coords {
		k := c.Key(l)
		if !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].less(out[j]) })
	return out
}

// SpreadOrder returns a permutation of the nodes that interleaves zones:
// position i and position i+1 are in different zones whenever the fleet has
// more than one zone. A replica ring built over this order therefore places
// every node's successor outside its own zone — the anti-affinity order the
// placement policies ring over. Ties are broken by node id, so the order is
// deterministic for a given topology.
func (t *Topology) SpreadOrder() []int {
	zones := t.Domains(LevelZone)
	byZone := make(map[Coord][]int, len(zones))
	for n, c := range t.coords {
		k := c.Key(LevelZone)
		byZone[k] = append(byZone[k], n)
	}
	out := make([]int, 0, len(t.coords))
	for round := 0; len(out) < len(t.coords); round++ {
		for _, z := range zones {
			if members := byZone[z]; round < len(members) {
				out = append(out, members[round])
			}
		}
	}
	return out
}

// Slice returns the sub-topology covering nodes [lo, hi), renumbered from
// zero — the shape the sharded engine needs for a contiguous node span.
func (t *Topology) Slice(lo, hi int) *Topology {
	return New(t.coords[lo:hi])
}

// Summary renders the domain shape, e.g. "2 providers / 4 zones / 16 racks".
func (t *Topology) Summary() string {
	return fmt.Sprintf("%dp/%dz/%dr",
		len(t.Domains(LevelProvider)), len(t.Domains(LevelZone)), len(t.Domains(LevelRack)))
}
