package topo

import (
	"testing"
)

func TestUniformBlockContiguous(t *testing.T) {
	tp, err := Uniform(16, 2, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if tp.Nodes() != 16 {
		t.Fatalf("nodes = %d", tp.Nodes())
	}
	// 8 racks, 2 nodes each; consecutive ids share a rack.
	for n := 0; n < 16; n += 2 {
		if !tp.SameDomain(LevelRack, n, n+1) {
			t.Errorf("nodes %d and %d should share a rack", n, n+1)
		}
	}
	// The naive ring buddy (n+1) of node 0 is in the same zone — the layout
	// that makes the naive-placement loss demo meaningful.
	if !tp.SameDomain(LevelZone, 0, 1) {
		t.Error("block layout should put node 0 and 1 in one zone")
	}
	if got := len(tp.Domains(LevelProvider)); got != 2 {
		t.Errorf("providers = %d, want 2", got)
	}
	if got := len(tp.Domains(LevelZone)); got != 4 {
		t.Errorf("zones = %d, want 4", got)
	}
	if got := len(tp.Domains(LevelRack)); got != 8 {
		t.Errorf("racks = %d, want 8", got)
	}
	if s := tp.Summary(); s != "2p/4z/8r" {
		t.Errorf("summary = %q", s)
	}
}

func TestUniformFewerNodesThanRacks(t *testing.T) {
	tp, err := Uniform(3, 1, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < 2; n++ {
		if tp.SameDomain(LevelRack, n, n+1) {
			t.Errorf("sparse fleet should spread nodes %d,%d across racks", n, n+1)
		}
	}
}

func TestUniformRejectsBadShape(t *testing.T) {
	if _, err := Uniform(0, 1, 1, 1); err == nil {
		t.Error("0 nodes accepted")
	}
	if _, err := Uniform(4, 1, 0, 1); err == nil {
		t.Error("0 zones accepted")
	}
}

func TestNodesInAndHas(t *testing.T) {
	tp, _ := Uniform(8, 1, 2, 2)
	zone0 := tp.NodesIn(LevelZone, Coord{Zone: 0})
	zone1 := tp.NodesIn(LevelZone, Coord{Zone: 1})
	if len(zone0)+len(zone1) != 8 {
		t.Fatalf("zones partition the fleet: %d + %d", len(zone0), len(zone1))
	}
	if !tp.Has(LevelZone, Coord{Zone: 1}) {
		t.Error("zone 1 should exist")
	}
	if tp.Has(LevelZone, Coord{Zone: 2}) {
		t.Error("zone 2 should not exist")
	}
	if tp.Has(LevelProvider, Coord{Provider: 1}) {
		t.Error("provider 1 should not exist")
	}
}

func TestSpreadOrderAlternatesZones(t *testing.T) {
	tp, _ := Uniform(12, 1, 3, 2)
	order := tp.SpreadOrder()
	if len(order) != 12 {
		t.Fatalf("order covers %d nodes", len(order))
	}
	seen := make(map[int]bool)
	for i, n := range order {
		if seen[n] {
			t.Fatalf("node %d appears twice", n)
		}
		seen[n] = true
		next := order[(i+1)%len(order)]
		if tp.SameDomain(LevelZone, n, next) {
			t.Errorf("order[%d]=%d and successor %d share a zone", i, n, next)
		}
	}
}

func TestSpreadOrderUnbalanced(t *testing.T) {
	// 2 zones with uneven populations: the order must still cover all nodes
	// exactly once.
	coords := []Coord{
		{Zone: 0}, {Zone: 0}, {Zone: 0}, {Zone: 0}, {Zone: 1},
	}
	tp := New(coords)
	order := tp.SpreadOrder()
	if len(order) != 5 {
		t.Fatalf("order covers %d nodes, want 5", len(order))
	}
	seen := make(map[int]bool)
	for _, n := range order {
		seen[n] = true
	}
	if len(seen) != 5 {
		t.Fatalf("order repeats nodes: %v", order)
	}
}

func TestSliceRenumbers(t *testing.T) {
	tp, _ := Uniform(8, 2, 1, 2)
	sub := tp.Slice(4, 8)
	if sub.Nodes() != 4 {
		t.Fatalf("slice nodes = %d", sub.Nodes())
	}
	if got, want := sub.Coord(0), tp.Coord(4); got != want {
		t.Errorf("slice coord 0 = %+v, want %+v", got, want)
	}
	if sub.Contains(4) {
		t.Error("slice should not contain node 4")
	}
}

func TestOutsideNodesBelongNowhere(t *testing.T) {
	tp, _ := Uniform(4, 1, 2, 1)
	if tp.Contains(4) {
		t.Error("node 4 is outside")
	}
	if tp.SameDomain(LevelZone, 0, 4) {
		t.Error("outside node shares no domain")
	}
}

func TestCoordLabels(t *testing.T) {
	c := Coord{Provider: 1, Zone: 2, Rack: 3}
	if got := c.Label(LevelRack); got != "p1/z2/r3" {
		t.Errorf("rack label = %q", got)
	}
	if got := c.Label(LevelZone); got != "p1/z2" {
		t.Errorf("zone label = %q", got)
	}
	if got := c.Label(LevelProvider); got != "p1" {
		t.Errorf("provider label = %q", got)
	}
	if got := c.Key(LevelZone); got != (Coord{Provider: 1, Zone: 2}) {
		t.Errorf("zone key = %+v", got)
	}
}
