// Package resource models bandwidth-shared hardware resources under the
// simulation clock. A Pipe is a processor-sharing ("fluid flow") model of a
// memory device, bus, or network link: concurrent transfers share the pipe's
// capacity max-min fairly, with optional per-flow rate caps and a capacity
// curve describing how aggregate bandwidth scales (or saturates) with the
// number of concurrent flows. This is what produces the paper's per-core
// bandwidth collapse (Figure 4) and interconnect contention (Figures 9/10).
package resource

import (
	"fmt"
	"math"
	"sort"
	"time"

	"nvmcp/internal/sim"
)

// ScalingFunc maps a concurrent-flow count to an aggregate-capacity
// multiplier, relative to the single-flow rate. scale(1) must be 1; values
// below n model contention (per-flow share = scale(n)/n of single-flow rate).
type ScalingFunc func(n int) float64

// FlatScaling models a device whose aggregate bandwidth a single flow can
// already saturate (e.g. a PCM DIMM's ~2 GB/s write path): scale(n) = 1, so
// n flows each get 1/n of the device.
func FlatScaling() ScalingFunc {
	return func(n int) float64 { return 1 }
}

// LinearScaling models perfect parallel scaling up to maxFlows concurrent
// flows, flat afterwards.
func LinearScaling(maxFlows int) ScalingFunc {
	return func(n int) float64 {
		if n > maxFlows {
			n = maxFlows
		}
		return float64(n)
	}
}

// SaturatingScaling models sub-linear scaling: scale(n) = n / (1 + beta*(n-1)).
// beta = 0 is linear; beta = 1 is flat. The per-flow share relative to a lone
// flow is 1/(1+beta*(n-1)), so beta can be calibrated directly from a
// measured per-core bandwidth drop (e.g. the paper's 67 % drop at 12 cores
// gives beta ≈ 0.1845).
func SaturatingScaling(beta float64) ScalingFunc {
	return func(n int) float64 {
		if n < 1 {
			n = 1
		}
		return float64(n) / (1 + beta*float64(n-1))
	}
}

// BetaForPerFlowDrop returns the SaturatingScaling beta such that with n
// flows each flow retains `retain` (0..1] of its single-flow bandwidth.
func BetaForPerFlowDrop(n int, retain float64) float64 {
	if n <= 1 || retain >= 1 {
		return 0
	}
	return (1/retain - 1) / float64(n-1)
}

// RateListener observes every aggregate-rate change on a pipe. It is called
// with the virtual time of the change and the new total rate in bytes/sec;
// the rate holds until the next call.
type RateListener func(t time.Duration, totalRate float64)

// Pipe is a fair-shared bandwidth resource.
type Pipe struct {
	env        *sim.Env
	name       string
	singleRate float64 // bytes/sec achieved by a lone flow
	scale      ScalingFunc
	// flows is kept sorted by (cap, id) at all times: water-filling must
	// visit the tightest caps first, and keeping the order incrementally
	// (binary-search insert on join, memmove delete on leave) means
	// recompute never allocates or sorts on the transfer hot path. The
	// fixed order also makes every float accumulation deterministic.
	flows     []*flow
	lastT     time.Duration
	doneEv    *sim.Event
	listeners []RateListener

	// Bytes is the cumulative volume moved through the pipe.
	Bytes float64
	// BusyTime accumulates virtual time during which at least one flow
	// was active.
	BusyTime time.Duration
	// Transfers counts completed transfers.
	Transfers int64

	nextFlowID uint64
}

type flow struct {
	id        uint64 // creation order, for deterministic completion order
	remaining float64
	rate      float64 // current allocation, bytes/sec
	cap       float64 // per-flow rate cap (Inf if none)
	done      *sim.Completion
}

// NewPipe creates a pipe where a lone flow moves singleRate bytes/sec and
// aggregate capacity follows scale. singleRate must be positive; a nil scale
// defaults to FlatScaling.
func NewPipe(env *sim.Env, name string, singleRate float64, scale ScalingFunc) *Pipe {
	if singleRate <= 0 {
		panic("resource: pipe " + name + " needs positive bandwidth")
	}
	if scale == nil {
		scale = FlatScaling()
	}
	return &Pipe{
		env:        env,
		name:       name,
		singleRate: singleRate,
		scale:      scale,
		lastT:      env.Now(),
	}
}

// Name returns the pipe's name.
func (pp *Pipe) Name() string { return pp.name }

// SingleRate returns the bandwidth a lone flow achieves, in bytes/sec.
func (pp *Pipe) SingleRate() float64 { return pp.singleRate }

// Capacity returns the aggregate bandwidth available to n concurrent flows.
func (pp *Pipe) Capacity(n int) float64 {
	if n <= 0 {
		return 0
	}
	return pp.singleRate * pp.scale(n)
}

// PerFlowRate returns the fair share each of n uncapped flows receives.
func (pp *Pipe) PerFlowRate(n int) float64 {
	if n <= 0 {
		return 0
	}
	return pp.Capacity(n) / float64(n)
}

// ActiveFlows returns the number of in-flight transfers.
func (pp *Pipe) ActiveFlows() int { return len(pp.flows) }

// CurrentRate returns the present aggregate transfer rate in bytes/sec.
func (pp *Pipe) CurrentRate() float64 {
	total := 0.0
	for _, f := range pp.flows {
		total += f.rate
	}
	return total
}

// addFlow inserts f keeping flows sorted by (cap, id). New flows carry the
// largest id, so inserting after every flow with cap <= f.cap is stable.
func (pp *Pipe) addFlow(f *flow) {
	i := sort.Search(len(pp.flows), func(i int) bool { return pp.flows[i].cap > f.cap })
	pp.flows = append(pp.flows, nil)
	copy(pp.flows[i+1:], pp.flows[i:])
	pp.flows[i] = f
}

// removeFlow deletes f from the sorted flow set.
func (pp *Pipe) removeFlow(f *flow) {
	for i, g := range pp.flows {
		if g == f {
			pp.flows = append(pp.flows[:i], pp.flows[i+1:]...)
			return
		}
	}
}

// OnRateChange registers a listener for aggregate-rate changes. The listener
// fires immediately with the current rate so timelines start grounded.
func (pp *Pipe) OnRateChange(l RateListener) {
	pp.listeners = append(pp.listeners, l)
	l(pp.env.Now(), pp.CurrentRate())
}

// Transfer moves size bytes through the pipe, blocking p in virtual time
// until the transfer completes. Zero or negative sizes return immediately.
func (pp *Pipe) Transfer(p *sim.Proc, size int64) {
	pp.TransferCapped(p, size, math.Inf(1))
}

// TransferCapped is Transfer with a per-flow rate ceiling in bytes/sec,
// used e.g. to model throttled background pre-copy streams.
func (pp *Pipe) TransferCapped(p *sim.Proc, size int64, maxRate float64) {
	if size <= 0 {
		return
	}
	if maxRate <= 0 {
		panic("resource: non-positive rate cap on " + pp.name)
	}
	pp.nextFlowID++
	f := &flow{id: pp.nextFlowID, remaining: float64(size), cap: maxRate, done: sim.NewCompletion(pp.env)}
	pp.advance()
	pp.addFlow(f)
	pp.recompute()
	defer func() {
		if !f.done.Completed() {
			// Kill unwind mid-transfer: account for what moved and
			// free the flow's share.
			pp.advance()
			pp.removeFlow(f)
			pp.recompute()
		}
	}()
	f.done.Await(p)
	pp.Transfers++
}

// EstimateTime returns how long size bytes would take if they were the only
// flow (used by the pre-copy threshold calculator, not by transfers).
func (pp *Pipe) EstimateTime(size int64) time.Duration {
	secs := float64(size) / pp.singleRate
	return time.Duration(secs * float64(time.Second))
}

// advance applies progress at the current rates up to Now.
func (pp *Pipe) advance() {
	now := pp.env.Now()
	dt := (now - pp.lastT).Seconds()
	if dt <= 0 {
		pp.lastT = now
		return
	}
	if len(pp.flows) > 0 {
		pp.BusyTime += now - pp.lastT
		moved := 0.0
		// The slice's fixed (cap, id) order makes this float accumulation
		// reproducible run to run; iterating a map here would make Bytes
		// depend on Go's randomized map order.
		for _, f := range pp.flows {
			prog := f.rate * dt
			if prog > f.remaining {
				prog = f.remaining
			}
			f.remaining -= prog
			moved += prog
		}
		pp.Bytes += moved
	}
	pp.lastT = now
}

// recompute performs max-min fair allocation with per-flow caps and
// reschedules the next completion event.
func (pp *Pipe) recompute() {
	if pp.doneEv != nil {
		pp.doneEv.Cancel()
		pp.doneEv = nil
	}
	n := len(pp.flows)
	if n == 0 {
		pp.notify(0)
		return
	}
	// Water-filling: satisfy capped flows whose cap is below the equal
	// share, then split the rest equally. The flow set is already sorted
	// by (cap, id), so this is a single allocation-free pass.
	capacity := pp.Capacity(n)
	remainingCap := capacity
	remainingFlows := n
	for _, f := range pp.flows {
		share := remainingCap / float64(remainingFlows)
		if f.cap < share {
			f.rate = f.cap
		} else {
			f.rate = share
		}
		remainingCap -= f.rate
		remainingFlows--
	}
	// Schedule the earliest completion.
	earliest := math.Inf(1)
	for _, f := range pp.flows {
		if f.rate <= 0 {
			continue
		}
		t := f.remaining / f.rate
		if t < earliest {
			earliest = t
		}
	}
	total := 0.0
	for _, f := range pp.flows {
		total += f.rate
	}
	pp.notify(total)
	if math.IsInf(earliest, 1) {
		return
	}
	d := time.Duration(math.Ceil(earliest * float64(time.Second)))
	if d < 1 {
		d = 1
	}
	pp.doneEv = pp.env.Schedule(d, pp.onDeadline)
}

// onDeadline fires when the earliest flow should have finished: apply
// progress, retire finished flows, reallocate.
func (pp *Pipe) onDeadline() {
	pp.doneEv = nil
	pp.advance()
	const eps = 1e-3 // bytes; transfers are whole bytes, rates are floats
	var finished []*flow
	for _, f := range pp.flows {
		if f.remaining <= eps {
			finished = append(finished, f)
		}
	}
	// Complete in creation order so the wake sequence (and therefore the
	// whole simulation) is reproducible; the flow set is sorted by cap
	// first, so re-sort the (usually tiny) finished batch by id.
	sort.Slice(finished, func(i, j int) bool { return finished[i].id < finished[j].id })
	for _, f := range finished {
		pp.removeFlow(f)
		f.done.Complete()
	}
	pp.recompute()
}

func (pp *Pipe) notify(total float64) {
	for _, l := range pp.listeners {
		l(pp.env.Now(), total)
	}
}

// String implements fmt.Stringer.
func (pp *Pipe) String() string {
	return fmt.Sprintf("resource.Pipe{%s single=%.0fB/s flows=%d}", pp.name, pp.singleRate, len(pp.flows))
}
