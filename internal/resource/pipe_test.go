package resource

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"nvmcp/internal/sim"
)

const (
	kb = 1 << 10
	mb = 1 << 20
)

func TestSingleTransferTiming(t *testing.T) {
	e := sim.NewEnv()
	pp := NewPipe(e, "nvm", 100*mb, FlatScaling()) // 100 MB/s
	var done time.Duration
	e.Go("w", func(p *sim.Proc) {
		pp.Transfer(p, 50*mb)
		done = p.Now()
	})
	e.Run()
	want := 500 * time.Millisecond
	if diff := (done - want).Abs(); diff > time.Millisecond {
		t.Fatalf("50MB at 100MB/s finished at %v, want ~%v", done, want)
	}
	if pp.Transfers != 1 {
		t.Fatalf("Transfers = %d, want 1", pp.Transfers)
	}
	if math.Abs(pp.Bytes-50*mb) > 1 {
		t.Fatalf("Bytes = %v, want %d", pp.Bytes, 50*mb)
	}
}

func TestFlatSharingHalvesRate(t *testing.T) {
	e := sim.NewEnv()
	pp := NewPipe(e, "nvm", 100*mb, FlatScaling())
	var d1, d2 time.Duration
	e.Go("a", func(p *sim.Proc) { pp.Transfer(p, 50*mb); d1 = p.Now() })
	e.Go("b", func(p *sim.Proc) { pp.Transfer(p, 50*mb); d2 = p.Now() })
	e.Run()
	// Two equal flows sharing 100 MB/s: both complete at 1s.
	for _, d := range []time.Duration{d1, d2} {
		if diff := (d - time.Second).Abs(); diff > time.Millisecond {
			t.Fatalf("shared transfer finished at %v, want ~1s", d)
		}
	}
}

func TestShortFlowReleasesBandwidth(t *testing.T) {
	e := sim.NewEnv()
	pp := NewPipe(e, "nvm", 100*mb, FlatScaling())
	var dShort, dLong time.Duration
	e.Go("short", func(p *sim.Proc) { pp.Transfer(p, 10*mb); dShort = p.Now() })
	e.Go("long", func(p *sim.Proc) { pp.Transfer(p, 60*mb); dLong = p.Now() })
	e.Run()
	// Both run at 50 MB/s until short's 10MB finish at 0.2s; long then has
	// 50MB left at 100MB/s -> finishes at 0.7s.
	if diff := (dShort - 200*time.Millisecond).Abs(); diff > time.Millisecond {
		t.Fatalf("short finished at %v, want ~200ms", dShort)
	}
	if diff := (dLong - 700*time.Millisecond).Abs(); diff > time.Millisecond {
		t.Fatalf("long finished at %v, want ~700ms", dLong)
	}
}

func TestLateArrivalSlowsInFlightTransfer(t *testing.T) {
	e := sim.NewEnv()
	pp := NewPipe(e, "nvm", 100*mb, FlatScaling())
	var dA time.Duration
	e.Go("a", func(p *sim.Proc) { pp.Transfer(p, 100*mb); dA = p.Now() })
	e.Go("b", func(p *sim.Proc) {
		p.Sleep(500 * time.Millisecond)
		pp.Transfer(p, 100*mb)
	})
	e.Run()
	// a: 50MB done in first 0.5s alone, then 50MB at 50MB/s -> 1.5s total.
	if diff := (dA - 1500*time.Millisecond).Abs(); diff > time.Millisecond {
		t.Fatalf("a finished at %v, want ~1.5s", dA)
	}
}

func TestPerFlowCapLeavesHeadroom(t *testing.T) {
	e := sim.NewEnv()
	pp := NewPipe(e, "link", 100*mb, FlatScaling())
	var dCapped, dFree time.Duration
	e.Go("capped", func(p *sim.Proc) {
		pp.TransferCapped(p, 10*mb, 10*mb) // throttled to 10 MB/s
		dCapped = p.Now()
	})
	e.Go("free", func(p *sim.Proc) {
		pp.Transfer(p, 90*mb) // gets the remaining 90 MB/s
		dFree = p.Now()
	})
	e.Run()
	if diff := (dCapped - time.Second).Abs(); diff > 2*time.Millisecond {
		t.Fatalf("capped finished at %v, want ~1s", dCapped)
	}
	if diff := (dFree - time.Second).Abs(); diff > 2*time.Millisecond {
		t.Fatalf("free finished at %v, want ~1s", dFree)
	}
}

func TestSaturatingScalingPerFlowShare(t *testing.T) {
	// Calibrated so 12 flows retain 33% of single-flow bandwidth, the
	// paper's Figure 4 observation.
	beta := BetaForPerFlowDrop(12, 0.33)
	scale := SaturatingScaling(beta)
	if got := scale(1); math.Abs(got-1) > 1e-9 {
		t.Fatalf("scale(1) = %v, want 1", got)
	}
	perFlow12 := scale(12) / 12
	if math.Abs(perFlow12-0.33) > 1e-9 {
		t.Fatalf("per-flow share at 12 = %v, want 0.33", perFlow12)
	}
	// Monotonic aggregate, monotonically decreasing per-flow share.
	for n := 2; n <= 64; n++ {
		if scale(n) < scale(n-1) {
			t.Fatalf("aggregate scale decreased at n=%d", n)
		}
		if scale(n)/float64(n) > scale(n-1)/float64(n-1)+1e-12 {
			t.Fatalf("per-flow share increased at n=%d", n)
		}
	}
}

func TestLinearScalingCapsAtMaxFlows(t *testing.T) {
	s := LinearScaling(4)
	if s(2) != 2 || s(4) != 4 || s(8) != 4 {
		t.Fatalf("LinearScaling(4): s(2)=%v s(4)=%v s(8)=%v", s(2), s(4), s(8))
	}
}

func TestCapacityAndPerFlowRate(t *testing.T) {
	e := sim.NewEnv()
	pp := NewPipe(e, "dram", 1000, SaturatingScaling(0.5))
	if got := pp.Capacity(1); got != 1000 {
		t.Fatalf("Capacity(1) = %v, want 1000", got)
	}
	// n=3: scale = 3/(1+0.5*2) = 1.5 -> capacity 1500, per-flow 500.
	if got := pp.Capacity(3); math.Abs(got-1500) > 1e-9 {
		t.Fatalf("Capacity(3) = %v, want 1500", got)
	}
	if got := pp.PerFlowRate(3); math.Abs(got-500) > 1e-9 {
		t.Fatalf("PerFlowRate(3) = %v, want 500", got)
	}
	if pp.Capacity(0) != 0 || pp.PerFlowRate(0) != 0 {
		t.Fatal("zero flows should have zero capacity/rate")
	}
}

func TestKilledTransferFreesShare(t *testing.T) {
	e := sim.NewEnv()
	pp := NewPipe(e, "nvm", 100*mb, FlatScaling())
	victim := e.Go("victim", func(p *sim.Proc) {
		pp.Transfer(p, 1000*mb)
		t.Error("victim's transfer completed")
	})
	var dSurvivor time.Duration
	e.Go("survivor", func(p *sim.Proc) { pp.Transfer(p, 100*mb); dSurvivor = p.Now() })
	e.Go("killer", func(p *sim.Proc) {
		p.Sleep(time.Second)
		victim.Kill()
	})
	e.Run()
	// Shared 50MB/s for 1s (survivor: 50MB done), then full 100MB/s for
	// the remaining 50MB -> 1.5s.
	if diff := (dSurvivor - 1500*time.Millisecond).Abs(); diff > 2*time.Millisecond {
		t.Fatalf("survivor finished at %v, want ~1.5s", dSurvivor)
	}
	if pp.ActiveFlows() != 0 {
		t.Fatalf("flows leaked: %d", pp.ActiveFlows())
	}
	// The victim moved ~50MB before dying; total accounted bytes reflect it.
	if pp.Bytes < 149*mb || pp.Bytes > 151*mb {
		t.Fatalf("Bytes = %.0f, want ~150MB", pp.Bytes)
	}
}

func TestZeroSizeTransferIsInstant(t *testing.T) {
	e := sim.NewEnv()
	pp := NewPipe(e, "nvm", 100, nil)
	var done time.Duration = -1
	e.Go("w", func(p *sim.Proc) {
		pp.Transfer(p, 0)
		done = p.Now()
	})
	e.Run()
	if done != 0 {
		t.Fatalf("zero transfer took %v", done)
	}
}

func TestBusyTimeAccounting(t *testing.T) {
	e := sim.NewEnv()
	pp := NewPipe(e, "nvm", 100*mb, FlatScaling())
	e.Go("w", func(p *sim.Proc) {
		pp.Transfer(p, 50*mb) // 0.5s busy
		p.Sleep(time.Second)  // idle
		pp.Transfer(p, 50*mb) // 0.5s busy
	})
	e.Run()
	want := time.Second
	if diff := (pp.BusyTime - want).Abs(); diff > 2*time.Millisecond {
		t.Fatalf("BusyTime = %v, want ~%v", pp.BusyTime, want)
	}
}

func TestRateListenerSeesSteps(t *testing.T) {
	e := sim.NewEnv()
	pp := NewPipe(e, "link", 100*mb, FlatScaling())
	var rates []float64
	pp.OnRateChange(func(_ time.Duration, r float64) { rates = append(rates, r) })
	e.Go("a", func(p *sim.Proc) { pp.Transfer(p, 10*mb) })
	e.Go("b", func(p *sim.Proc) { pp.Transfer(p, 20*mb) })
	e.Run()
	if len(rates) < 4 {
		t.Fatalf("too few rate changes: %v", rates)
	}
	if rates[0] != 0 {
		t.Fatalf("initial rate = %v, want 0", rates[0])
	}
	if last := rates[len(rates)-1]; last != 0 {
		t.Fatalf("final rate = %v, want 0", last)
	}
	peak := 0.0
	for _, r := range rates {
		if r > peak {
			peak = r
		}
	}
	if math.Abs(peak-100*mb) > 1 {
		t.Fatalf("peak rate = %v, want 100MB/s", peak)
	}
}

func TestEstimateTime(t *testing.T) {
	e := sim.NewEnv()
	pp := NewPipe(e, "nvm", 2*1000*mb, nil) // ~2GB/s
	got := pp.EstimateTime(1000 * mb)
	if diff := (got - 500*time.Millisecond).Abs(); diff > time.Millisecond {
		t.Fatalf("EstimateTime = %v, want ~500ms", got)
	}
}

func TestManyConcurrentFlowsCompleteExactly(t *testing.T) {
	e := sim.NewEnv()
	pp := NewPipe(e, "nvm", 100*mb, FlatScaling())
	const n = 24
	finished := 0
	for i := 0; i < n; i++ {
		e.Go("w", func(p *sim.Proc) {
			pp.Transfer(p, 10*mb)
			finished++
		})
	}
	e.Run()
	if finished != n {
		t.Fatalf("finished = %d, want %d", finished, n)
	}
	// n equal flows of 10MB over 100MB/s aggregate: all done at n*0.1s.
	want := time.Duration(n) * 100 * time.Millisecond
	if diff := (e.Now() - want).Abs(); diff > 5*time.Millisecond {
		t.Fatalf("all done at %v, want ~%v", e.Now(), want)
	}
	if pp.ActiveFlows() != 0 {
		t.Fatalf("flows leaked: %d", pp.ActiveFlows())
	}
}

func TestBytesConservationProperty(t *testing.T) {
	// Whatever mix of sizes, caps and arrival times, completed transfers
	// account for exactly the bytes offered.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := sim.NewEnv()
		pp := NewPipe(e, "p", 100*mb, SaturatingScaling(rng.Float64()))
		var offered int64
		n := 2 + rng.Intn(12)
		for i := 0; i < n; i++ {
			size := int64(rng.Intn(20*mb) + 1)
			delay := time.Duration(rng.Intn(1000)) * time.Millisecond
			cap := math.Inf(1)
			if rng.Intn(2) == 0 {
				cap = float64(rng.Intn(50*mb) + 1)
			}
			offered += size
			e.Go("w", func(p *sim.Proc) {
				p.Sleep(delay)
				pp.TransferCapped(p, size, cap)
			})
		}
		e.Run()
		return math.Abs(pp.Bytes-float64(offered)) < 1.0 &&
			pp.ActiveFlows() == 0 &&
			pp.Transfers == int64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestCompletionOrderRespectsSizesProperty(t *testing.T) {
	// Equal-start uncapped flows must complete in size order.
	f := func(sizes8 [5]uint16) bool {
		e := sim.NewEnv()
		pp := NewPipe(e, "p", 100*mb, FlatScaling())
		type done struct {
			size int64
			at   time.Duration
		}
		var finished []done
		for _, s16 := range sizes8 {
			size := int64(s16) + 1
			e.Go("w", func(p *sim.Proc) {
				pp.Transfer(p, size)
				finished = append(finished, done{size, p.Now()})
			})
		}
		e.Run()
		for i := 1; i < len(finished); i++ {
			if finished[i].at < finished[i-1].at {
				return false
			}
			if finished[i].size < finished[i-1].size && finished[i].at > finished[i-1].at {
				return false // smaller flow finished after a larger one
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() time.Duration {
		e := sim.NewEnv()
		pp := NewPipe(e, "nvm", 100*mb, SaturatingScaling(0.2))
		for i := 0; i < 8; i++ {
			size := int64((i + 1) * 5 * mb)
			e.Go("w", func(p *sim.Proc) { pp.Transfer(p, size) })
		}
		e.Run()
		return e.Now()
	}
	first := run()
	for i := 0; i < 5; i++ {
		if got := run(); got != first {
			t.Fatalf("run %d ended at %v, first at %v", i, got, first)
		}
	}
}

// TestBytesDeterministicAcrossRuns pins the advance() accumulation order:
// with many concurrently staggered capped flows, the cumulative Bytes float
// must be bit-identical across repeated runs. Before flows were kept in a
// sorted slice, advance iterated a map and the float sum depended on Go's
// randomized map order.
func TestBytesDeterministicAcrossRuns(t *testing.T) {
	run := func() (float64, time.Duration) {
		e := sim.NewEnv()
		pp := NewPipe(e, "nvm", 97*mb, SaturatingScaling(0.17))
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < 32; i++ {
			size := int64(rng.Intn(20*mb) + 1)
			cap := float64(rng.Intn(50*mb) + 1*mb)
			delay := time.Duration(rng.Intn(100)) * time.Millisecond
			e.Go("w", func(p *sim.Proc) {
				p.Sleep(delay)
				pp.TransferCapped(p, size, cap)
			})
		}
		e.Run()
		return pp.Bytes, e.Now()
	}
	firstBytes, firstEnd := run()
	for i := 0; i < 10; i++ {
		b, end := run()
		if b != firstBytes || end != firstEnd {
			t.Fatalf("run %d: Bytes=%v end=%v, first Bytes=%v end=%v",
				i, b, end, firstBytes, firstEnd)
		}
	}
}

// BenchmarkPipeChurn measures the incremental flow-set maintenance under a
// churning population: staggered concurrent transfers join and leave, each
// arrival/departure triggering a max-min recompute over the live set.
func BenchmarkPipeChurn(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := sim.NewEnv()
		pp := NewPipe(e, "nvm", 400*mb, FlatScaling())
		for w := 0; w < 64; w++ {
			w := w % 8
			e.Go("w", func(p *sim.Proc) {
				p.Sleep(time.Duration(w) * 5 * time.Millisecond)
				for j := 0; j < 16; j++ {
					pp.TransferCapped(p, 2*mb, float64(50+w*10)*mb)
				}
			})
		}
		e.Run()
	}
}
