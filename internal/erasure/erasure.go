// Package erasure implements XOR-parity remote checkpointing — the
// memory-saving alternative to buddy replication that the paper's related
// work cites (Plank et al.'s diskless checkpointing with erasure coding).
// Instead of each node holding a full copy of its buddy's checkpoint (2x
// remote memory), a group of G member nodes stores a single XOR parity of
// their (rank-wise aligned) checkpoint chunks on a parity node: remote NVM
// falls from G·D to D per group, at the price of a much more expensive
// recovery — reconstructing a lost node's data needs the parity plus all
// G−1 survivors' contributions.
//
// The XOR is computed over the chunks' real payload bytes, so reconstruction
// is verified on content, exactly like the rest of the repository.
package erasure

import (
	"errors"
	"fmt"

	"nvmcp/internal/core"
	"nvmcp/internal/interconnect"
	"nvmcp/internal/mem"
	"nvmcp/internal/sim"
	"nvmcp/internal/trace"
)

// Errors.
var (
	ErrShape    = errors.New("erasure: member stores are not rank-aligned")
	ErrNoParity = errors.New("erasure: no committed parity round")
	ErrStale    = errors.New("erasure: survivor data no longer matches the parity round")
)

// chunkKey addresses a chunk within the group: the rank slot (position of
// the rank within its node) plus the chunk id, which is identical across
// ranks running the same application.
type chunkKey struct {
	slot int
	id   uint64
}

// parityChunk is the parity node's state for one (slot, chunk).
type parityChunk struct {
	size   int64
	data   []byte   // XOR of all members' payloads at the committed round
	seqs   []uint64 // per-member staged sequence captured at parity time
	reserv bool
}

// Group is one parity group: G member nodes plus a parity holder.
type Group struct {
	env        *sim.Env
	fabric     *interconnect.Fabric
	nvm        []*mem.Device // per-node NVM devices (cluster-wide indexing)
	members    []int
	parityNode int

	stores map[int][]*core.Store // member node -> rank-ordered stores
	parity map[chunkKey]*parityChunk
	round  uint64

	// Counters: "parity_rounds", "ship_bytes", "reconstructions",
	// "reconstruct_bytes".
	Counters trace.Counters
}

// NewGroup builds a parity group. members and parityNode index into the
// fabric's nodes; nvm[i] is node i's NVM device.
func NewGroup(env *sim.Env, fabric *interconnect.Fabric, nvm []*mem.Device, members []int, parityNode int) *Group {
	if len(members) < 2 {
		panic("erasure: a parity group needs at least two members")
	}
	for _, m := range members {
		if m == parityNode {
			panic("erasure: parity node must not be a member")
		}
	}
	return &Group{
		env:        env,
		fabric:     fabric,
		nvm:        nvm,
		members:    append([]int(nil), members...),
		parityNode: parityNode,
		stores:     make(map[int][]*core.Store),
		parity:     make(map[chunkKey]*parityChunk),
	}
}

// Register adds a member node's rank store. Stores must be registered in the
// same rank order on every member, so slot i on node a pairs with slot i on
// node b.
func (g *Group) Register(member int, s *core.Store) {
	g.stores[member] = append(g.stores[member], s)
}

// SetStores replaces a member node's rank-ordered stores wholesale — the
// re-registration path after a failure epoch, where freshly attached stores
// take over from the previous epoch's handles.
func (g *Group) SetStores(member int, stores []*core.Store) {
	g.stores[member] = append([]*core.Store(nil), stores...)
}

// Members returns the member node ids.
func (g *Group) Members() []int { return append([]int(nil), g.members...) }

// Round returns the committed parity round (0 before the first commit).
func (g *Group) Round() uint64 { return g.round }

// RemoteFootprint returns the parity node's NVM bytes held for this group —
// D per rank slot, against buddy replication's G·D (x2 for two versions).
func (g *Group) RemoteFootprint() int64 {
	var total int64
	for _, pc := range g.parity {
		if pc.reserv {
			total += pc.size
		}
	}
	return total
}

// CommitParity runs one coordinated parity round: every member ships each
// rank slot's staged chunks to the parity node, which folds them into the
// XOR accumulators. The round is atomic from the caller's perspective
// (invoke it at a coordinated checkpoint, after every member committed the
// same local round). Blocks p until the parity is durable.
func (g *Group) CommitParity(p *sim.Proc) error {
	shape, err := g.shape(p)
	if err != nil {
		return err
	}
	// Fresh accumulators for this round.
	next := make(map[chunkKey]*parityChunk, len(shape))
	for key, size := range shape {
		old := g.parity[key]
		pc := &parityChunk{size: size, seqs: make([]uint64, len(g.members))}
		if old != nil && old.reserv && old.size == size {
			pc.reserv = true // capacity already held
		} else {
			if old != nil && old.reserv {
				g.nvm[g.parityNode].Release(old.size)
			}
			if err := g.nvm[g.parityNode].Reserve(size); err != nil {
				return fmt.Errorf("erasure: parity node %d: %w", g.parityNode, err)
			}
			pc.reserv = true
		}
		next[key] = pc
	}

	for mi, member := range g.members {
		for slot, s := range g.stores[member] {
			for _, st := range s.Snapshot(p) {
				key := chunkKey{slot, st.ID}
				pc := next[key]
				data, ok := s.StagedData(p, st.ID)
				if !ok {
					return fmt.Errorf("erasure: member %d slot %d chunk %d has no staged data", member, slot, st.ID)
				}
				// Local NVM read, wire transfer, parity-node NVM write.
				s.Kernel().NVM.ReadBytes(p, st.Size)
				g.fabric.RDMAWrite(p, member, g.parityNode, st.Size, 0)
				g.nvm[g.parityNode].WriteBytes(p, st.Size)
				pc.data = xorInto(pc.data, data)
				pc.seqs[mi] = st.CleanSeq
				g.Counters.Add("ship_bytes", st.Size)
			}
		}
	}
	g.parity = next
	g.round++
	g.Counters.Add("parity_rounds", 1)
	return nil
}

// Reconstruct rebuilds the checkpoint payloads of a failed member from the
// parity plus every survivor's contribution, delivering them onto the
// (re-attached) stores of the failed node via AdoptRemote. Every survivor's
// chunk must still hold the exact data of the committed parity round.
func (g *Group) Reconstruct(p *sim.Proc, failed int, replacement []*core.Store) error {
	if g.round == 0 {
		return ErrNoParity
	}
	fi := -1
	for i, m := range g.members {
		if m == failed {
			fi = i
		}
	}
	if fi < 0 {
		return fmt.Errorf("erasure: node %d is not a group member", failed)
	}
	if len(replacement) != len(g.stores[failed]) {
		return fmt.Errorf("%w: replacement has %d stores, member had %d",
			ErrShape, len(replacement), len(g.stores[failed]))
	}

	for slot, s := range replacement {
		for _, c := range s.Chunks() {
			key := chunkKey{slot, c.ID}
			pc, ok := g.parity[key]
			if !ok {
				return fmt.Errorf("erasure: no parity for slot %d chunk %s", slot, c.Name)
			}
			// Start from the parity, shipped from the parity node.
			g.nvm[g.parityNode].ReadBytes(p, pc.size)
			g.fabric.RDMARead(p, g.parityNode, failed, pc.size)
			acc := append([]byte(nil), pc.data...)

			// Fold in every survivor's committed contribution.
			for mi, member := range g.members {
				if member == failed {
					continue
				}
				ss := g.stores[member][slot]
				snap := findState(ss, c.ID)
				if snap == nil {
					return fmt.Errorf("erasure: survivor %d missing chunk %s", member, c.Name)
				}
				if snap.CleanSeq != pc.seqs[mi] {
					return fmt.Errorf("%w: survivor %d chunk %s at seq %d, parity at %d",
						ErrStale, member, c.Name, snap.CleanSeq, pc.seqs[mi])
				}
				data, ok := ss.StagedData(p, c.ID)
				if !ok {
					return fmt.Errorf("erasure: survivor %d has no data for %s", member, c.Name)
				}
				ss.Kernel().NVM.ReadBytes(p, pc.size)
				g.fabric.RDMARead(p, member, failed, pc.size)
				acc = xorInto(acc, data)
				g.Counters.Add("reconstruct_bytes", pc.size)
			}
			if err := s.AdoptRemote(p, c, acc, 0); err != nil {
				return err
			}
		}
	}
	// The replacement stores take the failed member's place.
	g.stores[failed] = replacement
	g.Counters.Add("reconstructions", 1)
	return nil
}

// FetchChunk reconstructs a single chunk of a failed member from the parity
// plus every survivor's contribution, returning the payload without adopting
// it into a store (the caller delivers it). The transfer lands in the failed
// node's NVM. Survivors must still hold the committed round's data, else
// ErrStale.
func (g *Group) FetchChunk(p *sim.Proc, failed, slot int, id uint64) ([]byte, int64, error) {
	if g.round == 0 {
		return nil, 0, ErrNoParity
	}
	fi := -1
	for i, m := range g.members {
		if m == failed {
			fi = i
		}
	}
	if fi < 0 {
		return nil, 0, fmt.Errorf("erasure: node %d is not a group member", failed)
	}
	key := chunkKey{slot, id}
	pc, ok := g.parity[key]
	if !ok {
		return nil, 0, fmt.Errorf("erasure: no parity for slot %d chunk %d", slot, id)
	}
	// Start from the parity, shipped from the parity node.
	g.nvm[g.parityNode].ReadBytes(p, pc.size)
	g.fabric.RDMARead(p, g.parityNode, failed, pc.size)
	acc := append([]byte(nil), pc.data...)

	for mi, member := range g.members {
		if member == failed {
			continue
		}
		stores := g.stores[member]
		if slot >= len(stores) {
			return nil, 0, fmt.Errorf("%w: survivor %d has no rank slot %d", ErrShape, member, slot)
		}
		ss := stores[slot]
		snap := findState(ss, id)
		if snap == nil {
			return nil, 0, fmt.Errorf("erasure: survivor %d missing chunk %d", member, id)
		}
		if snap.CleanSeq != pc.seqs[mi] {
			return nil, 0, fmt.Errorf("%w: survivor %d chunk %d at seq %d, parity at %d",
				ErrStale, member, id, snap.CleanSeq, pc.seqs[mi])
		}
		data, ok := ss.StagedData(p, id)
		if !ok {
			return nil, 0, fmt.Errorf("erasure: survivor %d has no data for chunk %d", member, id)
		}
		ss.Kernel().NVM.ReadBytes(p, pc.size)
		g.fabric.RDMARead(p, member, failed, pc.size)
		acc = xorInto(acc, data)
		g.Counters.Add("reconstruct_bytes", pc.size)
	}
	g.nvm[failed].WriteBytes(p, pc.size)
	g.Counters.Add("reconstructions", 1)
	return acc, pc.size, nil
}

// shape validates rank alignment across members and returns the (slot,
// chunk) -> size map.
func (g *Group) shape(p *sim.Proc) (map[chunkKey]int64, error) {
	shape := make(map[chunkKey]int64)
	for i, member := range g.members {
		stores := g.stores[member]
		if i > 0 && len(stores) != len(g.stores[g.members[0]]) {
			return nil, fmt.Errorf("%w: node %d has %d ranks, node %d has %d",
				ErrShape, member, len(stores), g.members[0], len(g.stores[g.members[0]]))
		}
		for slot, s := range stores {
			for _, st := range s.Snapshot(p) {
				key := chunkKey{slot, st.ID}
				if prev, ok := shape[key]; ok {
					if prev != st.Size {
						return nil, fmt.Errorf("%w: chunk %d sizes differ (%d vs %d)",
							ErrShape, st.ID, prev, st.Size)
					}
				} else if i == 0 {
					shape[key] = st.Size
				} else {
					return nil, fmt.Errorf("%w: chunk %d only on node %d", ErrShape, st.ID, member)
				}
			}
		}
	}
	return shape, nil
}

// findState returns the snapshot entry for a chunk id, or nil.
func findState(s *core.Store, id uint64) *core.ChunkState {
	c := s.Chunk(id)
	if c == nil {
		return nil
	}
	return &core.ChunkState{
		ID:       c.ID,
		Size:     c.Size,
		CleanSeq: c.StagedSeq(),
	}
}

// xorInto returns dst ^= src, growing dst to cover src.
func xorInto(dst, src []byte) []byte {
	if len(src) > len(dst) {
		grown := make([]byte, len(src))
		copy(grown, dst)
		dst = grown
	}
	for i := range src {
		dst[i] ^= src[i]
	}
	return dst
}
