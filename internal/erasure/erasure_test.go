package erasure

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"nvmcp/internal/core"
	"nvmcp/internal/interconnect"
	"nvmcp/internal/mem"
	"nvmcp/internal/nvmkernel"
	"nvmcp/internal/sim"
)

// rig builds G member nodes plus a parity node, each member with one rank
// store holding two chunks of checkpointed data.
type rig struct {
	env     *sim.Env
	fabric  *interconnect.Fabric
	nvms    []*mem.Device
	kernels []*nvmkernel.Kernel
	group   *Group
	stores  []*core.Store // per member
}

func newRig(t *testing.T, members int) *rig {
	t.Helper()
	e := sim.NewEnv()
	nodes := members + 1
	fabric := interconnect.New(e, nodes, 0)
	nvms := make([]*mem.Device, nodes)
	kernels := make([]*nvmkernel.Kernel, nodes)
	for i := range nvms {
		nvms[i] = mem.NewPCM(e, 16*mem.GB)
		kernels[i] = nvmkernel.New(e, mem.NewDRAM(e, 16*mem.GB), nvms[i])
	}
	memberIDs := make([]int, members)
	for i := range memberIDs {
		memberIDs[i] = i
	}
	g := NewGroup(e, fabric, nvms, memberIDs, members)
	return &rig{env: e, fabric: fabric, nvms: nvms, kernels: kernels, group: g}
}

// seedStores creates one store per member with two checkpointed chunks.
func (r *rig) seedStores(t *testing.T) {
	t.Helper()
	r.env.Go("seed", func(p *sim.Proc) {
		for i := range r.group.members {
			s := core.NewStore(r.kernels[i].Attach(fmt.Sprintf("rank%d", i)), core.Options{})
			a, err := s.NVAlloc(p, "a", 20*mem.MB, true)
			if err != nil {
				t.Error(err)
				return
			}
			b, err := s.NVAlloc(p, "b", 5*mem.MB, true)
			if err != nil {
				t.Error(err)
				return
			}
			a.WriteAll(p)
			b.WriteAll(p)
			s.ChkptAll(p)
			r.group.Register(i, s)
			r.stores = append(r.stores, s)
		}
	})
	r.env.Run()
}

func TestParityCommitAndFootprint(t *testing.T) {
	r := newRig(t, 3)
	r.seedStores(t)
	r.env.Go("parity", func(p *sim.Proc) {
		if err := r.group.CommitParity(p); err != nil {
			t.Error(err)
		}
	})
	r.env.Run()
	if r.group.Round() != 1 {
		t.Fatalf("round = %d", r.group.Round())
	}
	// Parity holds D per rank slot (25MB), not G x D.
	if got := r.group.RemoteFootprint(); got != 25*mem.MB {
		t.Fatalf("footprint = %d, want 25MB (buddy replication would hold 75MB+)", got)
	}
	if r.nvms[3].Used != 25*mem.MB {
		t.Fatalf("parity node NVM used = %d", r.nvms[3].Used)
	}
	// Ship volume: every member sent its 25MB once.
	if got := r.group.Counters.Get("ship_bytes"); got != 75*mem.MB {
		t.Fatalf("ship_bytes = %d, want 75MB", got)
	}
}

func TestReconstructRecoversExactBytes(t *testing.T) {
	r := newRig(t, 3)
	r.seedStores(t)

	// Ground truth: member 1's committed payloads.
	var wantA, wantB []byte
	r.env.Go("snap", func(p *sim.Proc) {
		s := r.stores[1]
		da, _ := s.StagedData(p, core.GenID("a"))
		db, _ := s.StagedData(p, core.GenID("b"))
		wantA = append([]byte(nil), da...)
		wantB = append([]byte(nil), db...)
		if err := r.group.CommitParity(p); err != nil {
			t.Error(err)
		}
	})
	r.env.Run()

	// Hard-fail member 1 and reconstruct onto a fresh incarnation.
	r.kernels[1].HardFail()
	r.env.Go("recover", func(p *sim.Proc) {
		s := core.NewStore(r.kernels[1].Attach("rank1"), core.Options{})
		a, _ := s.NVAlloc(p, "a", 20*mem.MB, true)
		b, _ := s.NVAlloc(p, "b", 5*mem.MB, true)
		if a.Restored || b.Restored {
			t.Error("chunks restored locally after hard failure?")
			return
		}
		start := p.Now()
		if err := r.group.Reconstruct(p, 1, []*core.Store{s}); err != nil {
			t.Error(err)
			return
		}
		if took := p.Now() - start; took <= 0 {
			t.Error("reconstruction was free")
		}
		for i := range wantA {
			if a.Data()[i] != wantA[i] {
				t.Error("chunk a reconstruction mismatch")
				return
			}
		}
		for i := range wantB {
			if b.Data()[i] != wantB[i] {
				t.Error("chunk b reconstruction mismatch")
				return
			}
		}
	})
	r.env.Run()
	if r.group.Counters.Get("reconstructions") != 1 {
		t.Fatal("reconstruction not counted")
	}
}

func TestReconstructCostsGTimesBuddy(t *testing.T) {
	r := newRig(t, 4)
	r.seedStores(t)
	r.env.Go("parity", func(p *sim.Proc) {
		if err := r.group.CommitParity(p); err != nil {
			t.Error(err)
		}
	})
	r.env.Run()
	before := r.fabric.Bytes(interconnect.ClassCkpt)
	r.kernels[0].HardFail()
	var dur time.Duration
	r.env.Go("recover", func(p *sim.Proc) {
		s := core.NewStore(r.kernels[0].Attach("rank0"), core.Options{})
		s.NVAlloc(p, "a", 20*mem.MB, true)
		s.NVAlloc(p, "b", 5*mem.MB, true)
		start := p.Now()
		if err := r.group.Reconstruct(p, 0, []*core.Store{s}); err != nil {
			t.Error(err)
		}
		dur = p.Now() - start
	})
	r.env.Run()
	moved := r.fabric.Bytes(interconnect.ClassCkpt) - before
	// Parity (25MB) + 3 survivors (75MB) cross the fabric: 4x what a buddy
	// fetch (25MB) would move.
	want := float64(100 * mem.MB)
	if moved < want*0.99 || moved > want*1.01 {
		t.Fatalf("reconstruction moved %v bytes, want ~%v", moved, want)
	}
	if dur <= 0 {
		t.Fatal("no reconstruction time")
	}
}

func TestReconstructWithoutParityFails(t *testing.T) {
	r := newRig(t, 2)
	r.seedStores(t)
	r.env.Go("recover", func(p *sim.Proc) {
		if err := r.group.Reconstruct(p, 0, r.stores[:1]); !errors.Is(err, ErrNoParity) {
			t.Errorf("err = %v, want ErrNoParity", err)
		}
	})
	r.env.Run()
}

func TestStaleSurvivorDetected(t *testing.T) {
	r := newRig(t, 2)
	r.seedStores(t)
	r.env.Go("parity", func(p *sim.Proc) {
		if err := r.group.CommitParity(p); err != nil {
			t.Error(err)
			return
		}
		// Survivor 1 moves on past the parity round.
		s := r.stores[1]
		s.ChunkByName("a").WriteAll(p)
		s.ChunkByName("b").WriteAll(p)
		s.ChkptAll(p)
	})
	r.env.Run()
	r.kernels[0].HardFail()
	r.env.Go("recover", func(p *sim.Proc) {
		s := core.NewStore(r.kernels[0].Attach("rank0"), core.Options{})
		s.NVAlloc(p, "a", 20*mem.MB, true)
		s.NVAlloc(p, "b", 5*mem.MB, true)
		if err := r.group.Reconstruct(p, 0, []*core.Store{s}); !errors.Is(err, ErrStale) {
			t.Errorf("err = %v, want ErrStale (survivor advanced past the parity round)", err)
		}
	})
	r.env.Run()
}

func TestParityRoundRefreshesWithNewData(t *testing.T) {
	r := newRig(t, 2)
	r.seedStores(t)
	r.env.Go("driver", func(p *sim.Proc) {
		if err := r.group.CommitParity(p); err != nil {
			t.Error(err)
			return
		}
		// Both members advance one round, then re-parity.
		for _, s := range r.stores {
			s.ChunkByName("a").WriteAll(p)
			s.ChkptAll(p)
		}
		if err := r.group.CommitParity(p); err != nil {
			t.Error(err)
			return
		}
	})
	r.env.Run()
	if r.group.Round() != 2 {
		t.Fatalf("round = %d", r.group.Round())
	}
	// Footprint unchanged: accumulators replaced, not duplicated.
	if got := r.group.RemoteFootprint(); got != 25*mem.MB {
		t.Fatalf("footprint after re-parity = %d", got)
	}
}

func TestShapeMismatchDetected(t *testing.T) {
	r := newRig(t, 2)
	// Member 0 has the standard two chunks, member 1 an extra one.
	r.env.Go("seed", func(p *sim.Proc) {
		for i := 0; i < 2; i++ {
			s := core.NewStore(r.kernels[i].Attach(fmt.Sprintf("rank%d", i)), core.Options{})
			a, _ := s.NVAlloc(p, "a", 10*mem.MB, true)
			a.WriteAll(p)
			if i == 1 {
				b, _ := s.NVAlloc(p, "only-on-1", 5*mem.MB, true)
				b.WriteAll(p)
			}
			s.ChkptAll(p)
			r.group.Register(i, s)
		}
		if err := r.group.CommitParity(p); !errors.Is(err, ErrShape) {
			t.Errorf("err = %v, want ErrShape", err)
		}
	})
	r.env.Run()
}

func TestRemoteFootprintBeforeParityIsZero(t *testing.T) {
	r := newRig(t, 2)
	r.seedStores(t)
	if r.group.RemoteFootprint() != 0 {
		t.Fatal("footprint nonzero before any parity round")
	}
	if r.group.Round() != 0 {
		t.Fatal("round nonzero before commit")
	}
}

func TestXorIntoGrowsAndInverts(t *testing.T) {
	a := []byte{0x0F}
	b := []byte{0xF0, 0xAA}
	c := xorInto(append([]byte(nil), a...), b)
	if len(c) != 2 || c[0] != 0xFF || c[1] != 0xAA {
		t.Fatalf("xorInto = %v", c)
	}
	// XOR is its own inverse: folding b back yields a (zero-padded).
	back := xorInto(append([]byte(nil), c...), b)
	if back[0] != 0x0F || back[1] != 0 {
		t.Fatalf("inverse = %v", back)
	}
}

func TestGroupValidation(t *testing.T) {
	e := sim.NewEnv()
	fabric := interconnect.New(e, 3, 0)
	nvms := []*mem.Device{mem.NewPCM(e, mem.GB), mem.NewPCM(e, mem.GB), mem.NewPCM(e, mem.GB)}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("single-member group did not panic")
			}
		}()
		NewGroup(e, fabric, nvms, []int{0}, 2)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("parity-as-member did not panic")
			}
		}()
		NewGroup(e, fabric, nvms, []int{0, 1}, 1)
	}()
}
