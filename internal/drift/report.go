package drift

import (
	"encoding/json"
	"fmt"
	"html"
	"io"
	"os"
	"sort"
	"strings"

	"nvmcp/internal/report"
)

// SchemaVersion marks the drift report layout.
const SchemaVersion = 1

// Meta carries the run identity stamped into reports.
type Meta struct {
	Tool     string
	Scenario string
	Seed     int64
}

// Report is the byte-stable JSON artifact: declared-model baseline,
// per-window estimator/prediction rows, detected phase shifts, limit
// violations, and the run rollup.
type Report struct {
	SchemaVersion int          `json:"schema_version"`
	Tool          string       `json:"tool"`
	Scenario      string       `json:"scenario,omitempty"`
	Seed          int64        `json:"seed,omitempty"`
	WindowUS      int64        `json:"window_us"`
	VirtualEndUS  int64        `json:"virtual_end_us"`
	Baseline      Baseline     `json:"baseline"`
	Series        []string     `json:"series"`
	Windows       []Window     `json:"windows"`
	PhaseShifts   []PhaseShift `json:"phase_shifts"`
	Violations    []Violation  `json:"violations"`
	Summary       Summary      `json:"summary"`
}

// BuildReport snapshots the observatory into a report. Call after
// Finalize for complete coverage.
func BuildReport(d *Observatory, m Meta) Report {
	d.mu.Lock()
	endUS := d.endUS
	d.mu.Unlock()
	rep := Report{
		SchemaVersion: SchemaVersion,
		Tool:          m.Tool,
		Scenario:      m.Scenario,
		Seed:          m.Seed,
		WindowUS:      d.windowUS,
		VirtualEndUS:  endUS,
		Baseline:      d.Baseline(),
		Windows:       d.Windows(),
		PhaseShifts:   d.PhaseShifts(),
		Violations:    d.Violations(),
		Summary:       d.Summary(),
	}
	seen := map[string]bool{}
	for _, w := range rep.Windows {
		for k := range w.Values {
			seen[k] = true
		}
	}
	rep.Series = make([]string, 0, len(seen))
	for k := range seen {
		rep.Series = append(rep.Series, k)
	}
	sort.Strings(rep.Series)
	if rep.Windows == nil {
		rep.Windows = []Window{}
	}
	if rep.PhaseShifts == nil {
		rep.PhaseShifts = []PhaseShift{}
	}
	if rep.Violations == nil {
		rep.Violations = []Violation{}
	}
	return rep
}

// WriteJSON writes the indented, byte-stable JSON form.
func WriteJSON(w io.Writer, rep Report) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return fmt.Errorf("drift: encode report: %w", err)
	}
	return nil
}

// ReadReportFile loads and schema-checks a report written by WriteJSON.
func ReadReportFile(path string) (Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Report{}, fmt.Errorf("drift: read report: %w", err)
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return Report{}, fmt.Errorf("drift: parse report %s: %w", path, err)
	}
	if rep.SchemaVersion != SchemaVersion {
		return Report{}, fmt.Errorf("drift: report %s has schema_version %d, want %d",
			path, rep.SchemaVersion, SchemaVersion)
	}
	return rep, nil
}

// WriteHTML renders the standalone drift page (the same section the SLO
// report embeds, with its own chrome).
func WriteHTML(w io.Writer, rep Report) error {
	var b strings.Builder
	report.WriteHead(&b, "Model drift report")
	fmt.Fprintf(&b, "<h1>Model drift report</h1>\n<div class=\"meta\">%s", html.EscapeString(rep.Tool))
	if rep.Scenario != "" {
		fmt.Fprintf(&b, " · scenario %s", html.EscapeString(rep.Scenario))
	}
	if rep.Seed != 0 {
		fmt.Fprintf(&b, " · seed %d", rep.Seed)
	}
	fmt.Fprintf(&b, " · window %s · virtual end %s</div>\n",
		report.FmtSecs(float64(rep.WindowUS)/1e6), report.FmtSecs(float64(rep.VirtualEndUS)/1e6))
	rep.WriteHTMLSection(&b)
	report.WriteTail(&b)
	if _, err := io.WriteString(w, b.String()); err != nil {
		return fmt.Errorf("drift: write html report: %w", err)
	}
	return nil
}

// quantityView names the window-value keys and formatting of one drift
// quantity's predicted-vs-measured chart pair.
type quantityView struct {
	quantity string
	title    string
	predKey  string
	measKey  string
	fmtV     func(float64) string
}

func views() []quantityView {
	return []quantityView{
		{QtyCkptTime, "Local checkpoint time t_lcl", "ckpt_time_pred_s", "ckpt_time_meas_s", report.FmtSecs},
		{QtyWindowBytes, "Interconnect bytes per window", "window_bytes_pred", "window_bytes_meas", report.FmtBytes},
		{QtyEfficiency, "Application efficiency", "efficiency_pred", "efficiency_meas", report.FmtPct},
		{QtyPrecopyTp, "Pre-copy threshold T_p", "precopy_tp_pred_s", "precopy_tp_meas_s", report.FmtSecs},
	}
}

// WriteHTMLSection renders the drift section — the paper's
// model-validation figures as live charts: per quantity, the predicted
// (dashed) vs measured step lines, then the relative-error gauge with its
// limit line and violation markers; plus the phase-shift log, measured
// MTBF table, and violation log. The SLO HTML report embeds this when a
// drift report rides along.
func (rep *Report) WriteHTMLSection(b *strings.Builder) {
	b.WriteString("<h2>Model drift — §III predicted vs measured</h2>\n")
	fmt.Fprintf(b, "<div class=\"meta\">%d windows · %d phase shift(s) · %d violation(s)</div>\n",
		rep.Summary.Windows, rep.Summary.PhaseShifts, rep.Summary.Violations)
	writeBaselineTable(b, rep.Baseline)

	limitOf := map[string]float64{}
	for _, q := range rep.Summary.Quantities {
		if q.LimitMax > 0 {
			limitOf[q.Quantity] = q.LimitMax
		}
	}
	violAt := map[string]map[int]Violation{}
	for _, v := range rep.Violations {
		if violAt[v.Quantity] == nil {
			violAt[v.Quantity] = map[int]Violation{}
		}
		violAt[v.Quantity][v.Window] = v
	}

	for _, qv := range views() {
		writeQuantityCharts(b, rep, qv, limitOf[qv.quantity], violAt[qv.quantity])
	}
	writePhaseShifts(b, rep)
	writeMTBFTable(b, rep)
	writeDriftViolations(b, rep)
}

func writeBaselineTable(b *strings.Builder, bl Baseline) {
	b.WriteString("<table class=\"data\">\n<tr><th>ranks</th><th>D / rank</th><th>NVM BW/core</th><th>remote BW/core</th><th>I_lcl</th><th>I_rmt</th><th>t_lcl</th><th>t_rmt</th><th>T_p</th><th>efficiency</th></tr>\n")
	cell := func(s string) { fmt.Fprintf(b, "<td class=\"num\">%s</td>", html.EscapeString(s)) }
	b.WriteString("<tr>")
	cell(fmt.Sprintf("%d", bl.Ranks))
	cell(report.FmtBytes(float64(bl.CkptBytesPerRank)))
	cell(fmtBW(bl.NVMBWPerCore))
	cell(fmtBW(bl.RemoteBWPerCore))
	cell(report.FmtSecs(float64(bl.IntervalLocalUS) / 1e6))
	cell(report.FmtSecs(float64(bl.IntervalRemoteUS) / 1e6))
	cell(report.FmtSecs(float64(bl.TLclUS) / 1e6))
	cell(report.FmtSecs(float64(bl.TRmtUS) / 1e6))
	cell(report.FmtSecs(float64(bl.PrecopyTpUS) / 1e6))
	cell(report.FmtPct(bl.Efficiency))
	b.WriteString("</tr>\n</table>\n")
}

func fmtBW(v float64) string {
	if v <= 0 {
		return "–"
	}
	return report.FmtBytes(v) + "/s"
}

func writeQuantityCharts(b *strings.Builder, rep *Report, qv quantityView, limit float64, viol map[int]Violation) {
	var pred, meas []report.StepPoint
	for _, w := range rep.Windows {
		if v, ok := w.Values[qv.predKey]; ok {
			pred = append(pred, report.StepPoint{StartUS: w.StartUS, EndUS: w.EndUS, V: v,
				Label: windowLabel(w, "predicted", qv.fmtV(v))})
		}
		if v, ok := w.Values[qv.measKey]; ok {
			meas = append(meas, report.StepPoint{StartUS: w.StartUS, EndUS: w.EndUS, V: v,
				Label: windowLabel(w, "measured", qv.fmtV(v))})
		}
	}
	if len(pred)+len(meas) == 0 {
		return
	}
	report.WriteStepChart(b, report.StepChart{
		Title:   qv.title,
		SubHTML: "predicted (dashed) vs measured",
		Series: []report.StepSeries{
			{Name: "measured", Color: 1, Points: meas},
			{Name: "predicted", Color: 2, Dashed: true, Points: pred},
		},
		Fmt:       qv.fmtV,
		ClampZero: true,
	})

	// The drift gauge itself: relative error with the configured bound.
	var errs []report.StepPoint
	errKey := "err_" + qv.quantity
	for _, w := range rep.Windows {
		e, ok := w.Values[errKey]
		if !ok {
			continue
		}
		label := windowLabel(w, errKey, report.TrimFloat(e))
		v, bad := viol[w.Index]
		if bad {
			label = "⚠ " + label + " — " + v.Detail
		}
		errs = append(errs, report.StepPoint{StartUS: w.StartUS, EndUS: w.EndUS, V: e, Label: label, Bad: bad})
	}
	if len(errs) == 0 {
		return
	}
	var ths []report.Threshold
	sub := "no limit configured"
	if limit > 0 {
		ths = append(ths, report.Threshold{Label: fmt.Sprintf("max_rel_err ≤ %s", report.TrimFloat(limit)), V: limit})
		sub = "within limit"
	}
	if n := len(viol); n > 0 {
		sub = fmt.Sprintf("<span class=\"viol\">⚠ %d violating window(s)</span>", n)
	}
	report.WriteStepChart(b, report.StepChart{
		Title:      qv.title + " — drift (relative error)",
		SubHTML:    sub,
		Series:     []report.StepSeries{{Name: errKey, Color: 5, Points: errs}},
		Thresholds: ths,
		Fmt:        report.TrimFloat,
		ClampZero:  true,
	})
}

func windowLabel(w Window, what, val string) string {
	return fmt.Sprintf("[%s, %s) %s = %s",
		report.FmtSecs(float64(w.StartUS)/1e6), report.FmtSecs(float64(w.EndUS)/1e6), what, val)
}

func writePhaseShifts(b *strings.Builder, rep *Report) {
	if len(rep.PhaseShifts) == 0 {
		return
	}
	b.WriteString("<h2>Phase shifts</h2>\n<table class=\"data\">\n<tr><th>Virtual time</th><th>Window</th><th>Re-dirty regime</th></tr>\n")
	for _, p := range rep.PhaseShifts {
		fmt.Fprintf(b, "<tr><td class=\"num\">%s</td><td class=\"num\">%d</td><td>%s → %s</td></tr>\n",
			report.FmtSecs(float64(p.TUS)/1e6), p.Window,
			report.FmtPct(p.From), report.FmtPct(p.To))
	}
	b.WriteString("</table>\n")
}

func writeMTBFTable(b *strings.Builder, rep *Report) {
	if len(rep.Summary.MTBF) == 0 {
		return
	}
	b.WriteString("<h2>Measured MTBF</h2>\n<table class=\"data\">\n<tr><th>Failure class</th><th>Failures</th><th>Measured MTBF</th></tr>\n")
	for _, m := range rep.Summary.MTBF {
		fmt.Fprintf(b, "<tr><td>%s</td><td class=\"num\">%d</td><td class=\"num\">%s</td></tr>\n",
			html.EscapeString(m.Kind), m.Failures, report.FmtSecs(m.MeasuredSecs))
	}
	b.WriteString("</table>\n")
}

func writeDriftViolations(b *strings.Builder, rep *Report) {
	if len(rep.Violations) == 0 {
		return
	}
	b.WriteString("<h2>Drift violations</h2>\n<table class=\"data\">\n<tr><th>Virtual time</th><th>Window</th><th>Quantity</th><th>Detail</th></tr>\n")
	for _, v := range rep.Violations {
		fmt.Fprintf(b, "<tr><td class=\"num\">%s</td><td class=\"num\">%d</td><td>%s</td><td>%s</td></tr>\n",
			report.FmtSecs(float64(v.TUS)/1e6), v.Window, html.EscapeString(v.Quantity), html.EscapeString(v.Detail))
	}
	b.WriteString("</table>\n")
}
