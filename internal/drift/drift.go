// Package drift is the model-drift observatory: an event-tap consumer of
// the obs bus that maintains windowed online estimators of the quantities
// the paper's Section III model takes as inputs (per-chunk re-dirty rate,
// measured MTBF per failure class, effective NVM and remote bandwidths,
// measured t_lcl / t_rmt, pre-copy hit rate), re-evaluates the analytic
// model each virtual-time window with the measured inputs, and emits
// predicted-vs-measured drift gauges — the relative error per modeled
// quantity — plus phase-change detection when the re-dirty rate shifts
// regime.
//
// The observatory folds from the event stream alone (never from registry
// polling), so the same fold serves two entry paths: a live AddEventTap on
// serial runs, and a post-merge Replay over obs.MergeShards output on
// sharded runs. Both paths accumulate window state in integers and convert
// to floats only at window close, making every derived report byte-stable
// at any GOMAXPROCS for a fixed shard count.
package drift

import (
	"fmt"
	"sort"
	"time"
)

// Quantity names for the predicted-vs-measured drift gauges. Each is the
// relative error |pred - meas| / max(|pred|, |meas|) of one §III quantity,
// bounded to [0, 1] (0 = model and telemetry agree, 1 = totally off).
const (
	QtyCkptTime    = "ckpt_time"    // blocking local checkpoint time t_lcl
	QtyWindowBytes = "window_bytes" // interconnect bytes per drift window
	QtyEfficiency  = "efficiency"   // application efficiency (Fig 9 y-axis)
	QtyPrecopyTp   = "precopy_tp"   // DCPC pre-copy threshold T_p
)

// quantities is the sorted catalog of valid limit targets.
var quantities = []string{QtyCkptTime, QtyEfficiency, QtyPrecopyTp, QtyWindowBytes}

// Quantities lists the valid drift quantities, sorted.
func Quantities() []string {
	out := make([]string, len(quantities))
	copy(out, quantities)
	return out
}

func knownQuantity(q string) bool {
	i := sort.SearchStrings(quantities, q)
	return i < len(quantities) && quantities[i] == q
}

// Limit bounds the relative error of one quantity: the limit is breached
// when the quantity's drift gauge exceeds MaxRelErr for Over consecutive
// measured windows (windows where the quantity could not be evaluated do
// not count toward, or against, the streak).
type Limit struct {
	// Quantity is one of the drift quantity names (see Quantities).
	Quantity string `json:"quantity"`
	// MaxRelErr is the highest tolerated relative error, in (0, 1].
	MaxRelErr float64 `json:"max_rel_err"`
	// Over is how many consecutive measured windows must breach before a
	// violation fires (default 1). One violation per breach episode.
	Over int `json:"over,omitempty"`
}

func (l Limit) horizon() int {
	if l.Over <= 0 {
		return 1
	}
	return l.Over
}

// Spec is the scenario-declared drift configuration.
type Spec struct {
	// WindowSecs sets the estimator window in virtual seconds (default 5,
	// matching the SLO engine and the Fig 10 peak-window probe).
	WindowSecs float64 `json:"window_secs,omitempty"`
	// Limits are the drift thresholds; empty means observe-only (the
	// observatory still estimates, predicts and detects phase changes).
	Limits []Limit `json:"limits,omitempty"`
	// PhaseFactor is the regime-shift sensitivity: a window's re-dirty
	// rate more than PhaseFactor times the trailing regime mean (or less
	// than mean/PhaseFactor), with an absolute change of at least 0.05,
	// registers a phase shift and resets the regime. Default 2.
	PhaseFactor float64 `json:"phase_factor,omitempty"`
	// PhaseWarmup is how many active windows establish a regime before
	// shifts can fire (default 3).
	PhaseWarmup int `json:"phase_warmup,omitempty"`
}

// Defaults mirror the SLO engine's bounds.
const (
	DefaultWindow      = 5 * time.Second
	DefaultPhaseFactor = 2.0
	DefaultPhaseWarmup = 3

	defaultMaxWindows    = 512
	defaultMaxViolations = 64

	// phaseAbsGuard is the minimum absolute re-dirty-rate change that can
	// register as a regime shift, so near-zero regimes don't fire on noise.
	phaseAbsGuard = 0.05
)

// Window returns the effective estimator window.
func (s *Spec) Window() time.Duration {
	if s == nil || s.WindowSecs <= 0 {
		return DefaultWindow
	}
	return time.Duration(s.WindowSecs * float64(time.Second))
}

func (s *Spec) phaseFactor() float64 {
	if s == nil || s.PhaseFactor <= 0 {
		return DefaultPhaseFactor
	}
	return s.PhaseFactor
}

func (s *Spec) phaseWarmup() int {
	if s == nil || s.PhaseWarmup <= 0 {
		return DefaultPhaseWarmup
	}
	return s.PhaseWarmup
}

// Validate rejects malformed specs with actionable errors.
func (s *Spec) Validate() error {
	if s == nil {
		return nil
	}
	if s.WindowSecs < 0 {
		return fmt.Errorf("drift: window_secs must be >= 0, got %g", s.WindowSecs)
	}
	if s.PhaseFactor != 0 && s.PhaseFactor <= 1 {
		return fmt.Errorf("drift: phase_factor must be > 1 (got %g): a shift multiplies the regime mean", s.PhaseFactor)
	}
	if s.PhaseWarmup < 0 {
		return fmt.Errorf("drift: phase_warmup must be >= 0, got %d", s.PhaseWarmup)
	}
	for i, l := range s.Limits {
		if !knownQuantity(l.Quantity) {
			return fmt.Errorf("drift: limits[%d]: unknown quantity %q (valid: %v)", i, l.Quantity, quantities)
		}
		if l.MaxRelErr <= 0 || l.MaxRelErr > 1 {
			return fmt.Errorf("drift: limits[%d] (%s): max_rel_err must be in (0, 1], got %g — drift is the bounded relative error |pred-meas|/max(|pred|,|meas|)",
				i, l.Quantity, l.MaxRelErr)
		}
		if l.Over < 0 {
			return fmt.Errorf("drift: limits[%d] (%s): over must be >= 0, got %d", i, l.Quantity, l.Over)
		}
		for j := 0; j < i; j++ {
			if s.Limits[j].Quantity == l.Quantity {
				return fmt.Errorf("drift: limits[%d] duplicates quantity %q (limits[%d])", i, l.Quantity, j)
			}
		}
	}
	return nil
}

// Config enables and bounds the observatory on a cluster run.
type Config struct {
	Enabled bool
	// Strict makes the run fail loudly when any limit is violated.
	Strict bool
	Spec   Spec
	// MaxWindows bounds the retained window ring (default 512; older
	// windows are dropped from reports but stay in the aggregates).
	MaxWindows int
	// MaxViolations bounds the retained violation log (default 64).
	MaxViolations int
}

func (c Config) maxWindows() int {
	if c.MaxWindows <= 0 {
		return defaultMaxWindows
	}
	return c.MaxWindows
}

func (c Config) maxViolations() int {
	if c.MaxViolations <= 0 {
		return defaultMaxViolations
	}
	return c.MaxViolations
}

// Violation records one drift-limit breach episode.
type Violation struct {
	// TUS is the virtual time (µs) of the window close that fired.
	TUS int64 `json:"t_us"`
	// Window is the closing window's index.
	Window int `json:"window"`
	// Quantity is the drifting quantity.
	Quantity string `json:"quantity"`
	// RelErr is the window's measured relative error.
	RelErr float64 `json:"rel_err"`
	// MaxRelErr is the configured bound.
	MaxRelErr float64 `json:"max_rel_err"`
	// Over is the consecutive-window horizon that was filled.
	Over int `json:"over"`
	// Detail is the human-readable one-liner.
	Detail string `json:"detail"`
}

func (v Violation) String() string {
	return fmt.Sprintf("drift violation at t=%s window %d: %s", fmtUS(v.TUS), v.Window, v.Detail)
}

// PhaseShift records one detected re-dirty-rate regime change.
type PhaseShift struct {
	// TUS is the virtual time (µs) of the window close that detected it.
	TUS int64 `json:"t_us"`
	// Window is the closing window's index.
	Window int `json:"window"`
	// From is the trailing regime's mean re-dirty rate; To is the new
	// window's rate.
	From float64 `json:"from"`
	To   float64 `json:"to"`
}

func (p PhaseShift) String() string {
	return fmt.Sprintf("phase shift at t=%s window %d: redirty rate %.3f -> %.3f", fmtUS(p.TUS), p.Window, p.From, p.To)
}

func fmtUS(us int64) string {
	return (time.Duration(us) * time.Microsecond).String()
}
