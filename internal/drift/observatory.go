package drift

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strconv"
	"sync"
	"time"

	"nvmcp/internal/model"
	"nvmcp/internal/obs"
)

// Inputs are the declared model parameters the observatory predicts from.
// The cluster lowers them from its configuration once, at attach time; the
// observatory then replaces individual inputs with measured estimates
// window by window.
type Inputs struct {
	// Params are the declared §III parameters (TCompute is the whole-run
	// compute time, CkptSize the declared per-rank checkpoint size).
	Params model.Params
	// Ranks is the total rank (core) count across the cluster.
	Ranks int
	// IterTime is the declared pure-compute time of one iteration.
	IterTime time.Duration
	// RemoteOn marks the remote checkpoint tier enabled; without it the
	// window-bytes quantity has no prediction (nothing ships).
	RemoteOn bool
}

// Baseline is the window-0 model evaluation: the §III predictions from the
// declared inputs alone, before any telemetry. nvmcp-analyze computes the
// same quantities offline; the cross-check test holds the two together.
type Baseline struct {
	Ranks            int     `json:"ranks"`
	CkptBytesPerRank int64   `json:"ckpt_bytes_per_rank"`
	NVMBWPerCore     float64 `json:"nvm_bw_per_core"`
	RemoteBWPerCore  float64 `json:"remote_bw_per_core,omitempty"`
	IntervalLocalUS  int64   `json:"interval_local_us"`
	IntervalRemoteUS int64   `json:"interval_remote_us,omitempty"`
	MTBFLocalUS      int64   `json:"mtbf_local_us,omitempty"`
	MTBFRemoteUS     int64   `json:"mtbf_remote_us,omitempty"`
	TLclUS           int64   `json:"t_lcl_us"`
	TRmtUS           int64   `json:"t_rmt_us,omitempty"`
	PrecopyTpUS      int64   `json:"precopy_tp_us"`
	Efficiency       float64 `json:"efficiency"`
}

// BaselineFor evaluates the declared model once (the drift report's
// baseline row and the observatory's window-0 predictions).
func BaselineFor(in Inputs) Baseline {
	p := in.Params
	b := Baseline{
		Ranks:            in.Ranks,
		CkptBytesPerRank: p.CkptSize,
		NVMBWPerCore:     p.NVMBWPerCore,
		RemoteBWPerCore:  p.RemoteBWPerCore,
		IntervalLocalUS:  p.IntervalLocal.Microseconds(),
		IntervalRemoteUS: p.IntervalRemote.Microseconds(),
		MTBFLocalUS:      p.MTBFLocal.Microseconds(),
		MTBFRemoteUS:     p.MTBFRemote.Microseconds(),
	}
	if p.NVMBWPerCore > 0 {
		b.TLclUS = p.LocalCkptTime().Microseconds()
		b.PrecopyTpUS = model.PreCopyThreshold(p.IntervalLocal, p.CkptSize, p.NVMBWPerCore).Microseconds()
	}
	if p.RemoteBWPerCore > 0 {
		b.TRmtUS = p.RemoteCkptTime().Microseconds()
	}
	b.Efficiency = predictedEfficiency(p)
	return b
}

// predictedEfficiency evaluates the model's efficiency with guards for
// absent inputs: missing MTBFs become effectively failure-free, a missing
// remote bandwidth borrows the NVM bandwidth (the restart term is then
// negligible anyway under the huge MTBF).
func predictedEfficiency(p model.Params) float64 {
	if p.TCompute <= 0 || p.IntervalLocal <= 0 || p.NVMBWPerCore <= 0 {
		return 0
	}
	const failureFree = 20 * 365 * 24 * time.Hour
	if p.MTBFLocal <= 0 {
		p.MTBFLocal = failureFree
	}
	if p.MTBFRemote <= 0 {
		p.MTBFRemote = failureFree
	}
	if p.IntervalRemote <= 0 {
		p.IntervalRemote = p.IntervalLocal
	}
	if p.RemoteBWPerCore <= 0 {
		p.RemoteBWPerCore = p.NVMBWPerCore
	}
	return p.Efficiency()
}

// Window is one closed estimator window. Values holds only the quantities
// that could be evaluated (absent, not zero, when there was no signal) —
// measured estimators, re-evaluated model predictions, and the err_*
// drift gauges.
type Window struct {
	Index   int                `json:"index"`
	StartUS int64              `json:"start_us"`
	EndUS   int64              `json:"end_us"`
	Values  map[string]float64 `json:"values"`
}

// winAcc accumulates one open window in integers; floats appear only at
// window close so the fold is order-insensitive within a window.
type winAcc struct {
	commits       int64
	commitBytes   int64
	commitDurUS   int64
	commitCopied  int64
	commitSkipped int64
	stagedBytes   int64
	stagedChunks  int64
	redirtyChunks int64
	redirtyBytes  int64
	precopyBytes  int64
	precopyCopies int64
	shippedBytes  int64
	shippedChunks int64
	rmtDurUS      int64
	rmtN          int64
	iters         int64
}

func (w *winAcc) active() bool {
	return w.commits+w.stagedChunks+w.shippedChunks+w.iters+w.precopyCopies > 0
}

// failAcc tracks one failure class's arrivals for the measured-MTBF
// estimator (mean spacing over [0, last arrival]).
type failAcc struct {
	n      int64
	lastUS int64
}

// limitAcc is one limit's consecutive-breach streak.
type limitAcc struct {
	streak int
	fired  bool
}

// qAcc aggregates one quantity's drift gauge across the run.
type qAcc struct {
	evaluated int
	breached  int
	sum       float64
	max       float64
}

// QuantityStatus summarizes one quantity's drift over the run.
type QuantityStatus struct {
	Quantity   string  `json:"quantity"`
	Evaluated  int     `json:"evaluated"`
	MaxRelErr  float64 `json:"max_rel_err"`
	MeanRelErr float64 `json:"mean_rel_err"`
	Breached   int     `json:"breached"`
	LimitMax   float64 `json:"limit_max,omitempty"`
}

// MTBFStatus is one failure class's measured vs declared MTBF.
type MTBFStatus struct {
	Kind         string  `json:"kind"`
	Failures     int64   `json:"failures"`
	MeasuredSecs float64 `json:"measured_mtbf_secs"`
}

// Summary is the run-level rollup.
type Summary struct {
	Windows     int              `json:"windows"`
	Quantities  []QuantityStatus `json:"quantities"`
	PhaseShifts int              `json:"phase_shifts"`
	Violations  int              `json:"violations"`
	MTBF        []MTBFStatus     `json:"mtbf,omitempty"`
}

// Observatory is the drift recorder. Create with New (then feed Observe or
// Replay) or Attach (live event tap). All exported readers are safe for
// concurrent use with the fold.
type Observatory struct {
	mu  sync.Mutex
	cfg Config
	in  Inputs
	reg *obs.Registry

	windowUS int64
	startUS  int64 // open window start
	cur      winAcc

	windows  []Window
	winTotal int

	iterTotal  int64
	fails      map[string]*failAcc
	trigUS     map[int]int64
	mttrSumUS  int64
	mttrN      int64
	lastMeasWB float64 // last window's measured bytes (forecasting)
	lastPredWB float64
	haveWB     bool

	// phase detection over re-dirty rate.
	regimeSum float64
	regimeN   int
	shifts    []PhaseShift

	limits  map[string]*limitAcc
	limMax  map[string]float64
	limOver map[string]int
	quants  map[string]*qAcc

	violations []Violation
	dropped    int

	finalized bool
	endUS     int64
}

// New builds an observatory; the caller feeds it via Observe or Replay.
// reg, when non-nil, receives the drift gauges (drift_rel_err{quantity},
// drift_phase_shifts, drift_windows) at every window close.
func New(cfg Config, in Inputs, reg *obs.Registry) *Observatory {
	d := &Observatory{
		cfg:      cfg,
		in:       in,
		reg:      reg,
		windowUS: cfg.Spec.Window().Microseconds(),
		fails:    map[string]*failAcc{},
		trigUS:   map[int]int64{},
		limits:   map[string]*limitAcc{},
		limMax:   map[string]float64{},
		limOver:  map[string]int{},
		quants:   map[string]*qAcc{},
	}
	for _, l := range cfg.Spec.Limits {
		d.limits[l.Quantity] = &limitAcc{}
		d.limMax[l.Quantity] = l.MaxRelErr
		d.limOver[l.Quantity] = l.horizon()
	}
	for _, q := range quantities {
		d.quants[q] = &qAcc{}
	}
	return d
}

// Attach builds an observatory and subscribes it to the observer's event
// stream (additive tap; the registry receives the drift gauges).
func Attach(o *obs.Observer, cfg Config, in Inputs) *Observatory {
	d := New(cfg, in, o.Registry())
	o.AddEventTap(d.Observe)
	return d
}

// Observe folds one event. It is the single fold path: the live tap calls
// it under the observer's lock, Replay calls it over a merged stream.
func (d *Observatory) Observe(ev obs.Event) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.finalized {
		return
	}
	d.closeThrough(ev.TUS)
	switch ev.Type {
	case obs.EvCheckpointCommit:
		d.cur.commits++
		d.cur.commitBytes += ev.Bytes
		d.cur.commitDurUS += attrInt(ev, "dur_us")
		d.cur.commitCopied += attrInt(ev, "copied")
		d.cur.commitSkipped += attrInt(ev, "skipped")
	case obs.EvChunkStaged:
		d.cur.stagedBytes += ev.Bytes
		d.cur.stagedChunks++
	case obs.EvChunkReDirtied:
		d.cur.redirtyChunks++
		d.cur.redirtyBytes += ev.Bytes
	case obs.EvPrecopyCopy:
		d.cur.precopyBytes += ev.Bytes
		d.cur.precopyCopies++
	case obs.EvChunkShipped:
		d.cur.shippedBytes += ev.Bytes
		d.cur.shippedChunks++
	case obs.EvRemoteTrigger:
		d.trigUS[ev.Node] = ev.TUS
	case obs.EvRemoteCommit:
		if t, ok := d.trigUS[ev.Node]; ok {
			d.cur.rmtDurUS += ev.TUS - t
			d.cur.rmtN++
			delete(d.trigUS, ev.Node)
		}
	case obs.EvIteration:
		d.cur.iters++
		d.iterTotal++
	case obs.EvFailure:
		kind := ev.Attrs["kind"]
		fa := d.fails[kind]
		if fa == nil {
			fa = &failAcc{}
			d.fails[kind] = fa
		}
		fa.n++
		fa.lastUS = ev.TUS
	case obs.EvRepairDone:
		d.mttrSumUS += attrInt(ev, "mttr_us")
		d.mttrN++
	}
}

// Replay folds an already-recorded event stream — the sharded path, run
// over obs.MergeShards output after the run completes. The merge is
// deterministic at a fixed shard count and the fold is order-insensitive
// within a window, so replayed reports are byte-identical at any
// GOMAXPROCS.
func (d *Observatory) Replay(events []obs.Event) {
	for _, ev := range events {
		d.Observe(ev)
	}
}

func attrInt(ev obs.Event, key string) int64 {
	v, err := strconv.ParseInt(ev.Attrs[key], 10, 64)
	if err != nil {
		return 0
	}
	return v
}

// closeThrough closes every window that ends at or before t (µs). Callers
// hold d.mu.
func (d *Observatory) closeThrough(tus int64) {
	for tus >= d.startUS+d.windowUS {
		d.closeWindow(d.startUS, d.startUS+d.windowUS)
		d.startUS += d.windowUS
	}
}

// measuredMTBF returns the mean failure spacing (µs) of the classes
// matched by local (soft errors) or remote (everything else) recovery, 0
// when no failure of the class has been seen. Callers hold d.mu.
func (d *Observatory) measuredMTBF(local bool) int64 {
	var n, last int64
	for kind, fa := range d.fails {
		if (kind == "soft") != local {
			continue
		}
		n += fa.n
		if fa.lastUS > last {
			last = fa.lastUS
		}
	}
	if n == 0 || last == 0 {
		return 0
	}
	return last / n
}

// closeWindow evaluates the estimators, re-runs the model with measured
// inputs, emits the drift gauges, feeds the phase detector and the limit
// evaluator, and pushes the window row. Callers hold d.mu.
func (d *Observatory) closeWindow(startUS, endUS int64) {
	idx := d.winTotal
	d.winTotal++
	w := d.cur
	d.cur = winAcc{}
	v := map[string]float64{}
	p := d.in.Params

	// Measured estimators.
	if w.stagedChunks > 0 {
		v["redirty_rate"] = float64(w.redirtyChunks) / float64(w.stagedChunks)
	}
	if w.commitCopied+w.commitSkipped > 0 {
		v["precopy_hit_rate"] = float64(w.commitSkipped) / float64(w.commitCopied+w.commitSkipped)
	}
	if w.commitDurUS > 0 && w.commitBytes > 0 {
		v["nvm_bw"] = float64(w.commitBytes) / (float64(w.commitDurUS) / 1e6)
	}
	if w.shippedChunks > 0 {
		v["remote_drain_bw"] = float64(w.shippedBytes) / (float64(d.windowUS) / 1e6)
	}
	if w.rmtN > 0 {
		v["t_rmt_meas_s"] = float64(w.rmtDurUS) / float64(w.rmtN) / 1e6
	}
	if mtbf := d.measuredMTBF(true); mtbf > 0 {
		v["mtbf_local_s"] = float64(mtbf) / 1e6
	}
	if mtbf := d.measuredMTBF(false); mtbf > 0 {
		v["mtbf_remote_s"] = float64(mtbf) / 1e6
	}

	// ckpt_time: the model's t_lcl for the bytes a commit actually copied
	// (the measured workload input) at the declared NVM bandwidth, vs the
	// measured commit duration. Zero-copy commits (a perfect pre-copy pass)
	// measure only fixed overhead the model does not predict, so they are
	// skipped rather than scored as 100% drift.
	if w.commits > 0 && w.commitBytes > 0 && p.NVMBWPerCore > 0 {
		dirtyPerCommit := float64(w.commitBytes) / float64(w.commits)
		pred := dirtyPerCommit / p.NVMBWPerCore
		meas := float64(w.commitDurUS) / float64(w.commits) / 1e6
		v["ckpt_time_pred_s"] = pred
		v["ckpt_time_meas_s"] = meas
		v["err_"+QtyCkptTime] = relErr(pred, meas)

		// precopy_tp: T_p = I - T_c re-evaluated with the measured dirty
		// residue, vs the threshold the measured commit duration implies.
		if p.IntervalLocal > 0 {
			iSecs := p.IntervalLocal.Seconds()
			predTp := math.Max(0, iSecs-pred)
			measTp := math.Max(0, iSecs-meas)
			v["precopy_tp_pred_s"] = predTp
			v["precopy_tp_meas_s"] = measTp
			v["err_"+QtyPrecopyTp] = relErr(predTp, measTp)
		}
	}

	// window_bytes: the model spreads each segment's D·P bytes evenly over
	// the remote interval — the steady interconnect load §III assumes — vs
	// the bytes the drain actually shipped this window. Windows with no
	// remote activity at all (neither staging nor shipping) carry no signal
	// and are skipped; the gauge then reads how bursty the real drain is
	// relative to the model's smooth spread.
	if d.in.RemoteOn && w.stagedBytes+w.shippedBytes > 0 &&
		p.IntervalRemote > 0 && p.CkptSize > 0 && d.in.Ranks > 0 {
		winSecs := float64(d.windowUS) / 1e6
		pred := float64(p.CkptSize) * float64(d.in.Ranks) / p.IntervalRemote.Seconds() * winSecs
		meas := float64(w.shippedBytes)
		v["window_bytes_pred"] = pred
		v["window_bytes_meas"] = meas
		v["err_"+QtyWindowBytes] = relErr(pred, meas)
		d.lastPredWB, d.lastMeasWB, d.haveWB = pred, meas, true
	}

	// efficiency: the model re-evaluated with the measured MTBFs (declared
	// values until a class is observed), vs the cumulative measured
	// efficiency — completed compute over elapsed virtual time.
	if d.iterTotal > 0 && d.in.Ranks > 0 && d.in.IterTime > 0 {
		q := p
		if mtbf := d.measuredMTBF(true); mtbf > 0 {
			q.MTBFLocal = time.Duration(mtbf) * time.Microsecond
		}
		if mtbf := d.measuredMTBF(false); mtbf > 0 {
			q.MTBFRemote = time.Duration(mtbf) * time.Microsecond
		}
		pred := predictedEfficiency(q)
		meas := float64(d.iterTotal) * float64(d.in.IterTime.Microseconds()) /
			(float64(d.in.Ranks) * float64(endUS))
		if pred > 0 {
			v["efficiency_pred"] = pred
			v["efficiency_meas"] = meas
			v["err_"+QtyEfficiency] = relErr(pred, meas)
		}
	}

	// Phase detection: a window's re-dirty rate jumping past the trailing
	// regime mean by the configured factor (and the absolute guard) marks
	// a workload phase change and resets the regime.
	if r, ok := v["redirty_rate"]; ok {
		factor := d.cfg.Spec.phaseFactor()
		if d.regimeN >= d.cfg.Spec.phaseWarmup() {
			mean := d.regimeSum / float64(d.regimeN)
			up := r >= mean*factor && r-mean >= phaseAbsGuard
			down := r <= mean/factor && mean-r >= phaseAbsGuard
			if up || down {
				d.shifts = append(d.shifts, PhaseShift{TUS: endUS, Window: idx, From: mean, To: r})
				d.regimeSum, d.regimeN = 0, 0
			}
		}
		d.regimeSum += r
		d.regimeN++
	}

	// Limits: one violation per episode of Over consecutive breached
	// measured windows.
	for _, q := range quantities {
		e, ok := v["err_"+q]
		if !ok {
			continue
		}
		qa := d.quants[q]
		qa.evaluated++
		qa.sum += e
		if e > qa.max {
			qa.max = e
		}
		la := d.limits[q]
		if la == nil {
			continue
		}
		max := d.limMax[q]
		if e > max {
			qa.breached++
			la.streak++
			if la.streak >= d.limOver[q] && !la.fired {
				la.fired = true
				d.addViolation(Violation{
					TUS: endUS, Window: idx, Quantity: q, RelErr: e,
					MaxRelErr: max, Over: d.limOver[q],
					Detail: fmt.Sprintf("%s drift %.3f > %.3f for %d consecutive window(s)",
						q, e, max, la.streak),
				})
			}
		} else {
			la.streak = 0
			la.fired = false
		}
	}

	// Gauges on the registry: the live observability surface.
	if d.reg != nil {
		for _, q := range quantities {
			if e, ok := v["err_"+q]; ok {
				d.reg.Gauge("drift_rel_err", obs.Labels{"quantity": q}).Set(e)
			}
		}
		d.reg.Gauge("drift_phase_shifts", nil).Set(float64(len(d.shifts)))
		d.reg.Gauge("drift_windows", nil).Set(float64(d.winTotal))
	}

	d.push(Window{Index: idx, StartUS: startUS, EndUS: endUS, Values: v})
	d.endUS = endUS
}

// relErr is the bounded symmetric relative error |a-b| / max(|a|,|b|).
func relErr(pred, meas float64) float64 {
	den := math.Max(math.Abs(pred), math.Abs(meas))
	if den == 0 {
		return 0
	}
	return math.Abs(pred-meas) / den
}

func (d *Observatory) push(w Window) {
	if len(d.windows) >= d.cfg.maxWindows() {
		copy(d.windows, d.windows[1:])
		d.windows[len(d.windows)-1] = w
		return
	}
	d.windows = append(d.windows, w)
}

func (d *Observatory) addViolation(v Violation) {
	if len(d.violations) >= d.cfg.maxViolations() {
		d.dropped++
		return
	}
	d.violations = append(d.violations, v)
}

// Finalize closes windows through the run's virtual end, including a
// partial tail window when it saw activity. Idempotent.
func (d *Observatory) Finalize(now time.Duration) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.finalized {
		return
	}
	d.closeThrough(now.Microseconds())
	if d.cur.active() {
		end := now.Microseconds()
		if end < d.startUS+1 {
			end = d.startUS + 1
		}
		d.closeWindow(d.startUS, end)
	}
	if d.endUS < now.Microseconds() {
		d.endUS = now.Microseconds()
	}
	d.finalized = true
}

// Windows returns the retained window rows.
func (d *Observatory) Windows() []Window {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]Window, len(d.windows))
	copy(out, d.windows)
	return out
}

// PhaseShifts returns the detected regime changes.
func (d *Observatory) PhaseShifts() []PhaseShift {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]PhaseShift, len(d.shifts))
	copy(out, d.shifts)
	return out
}

// Violations returns the retained drift-limit violations.
func (d *Observatory) Violations() []Violation {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]Violation, len(d.violations))
	copy(out, d.violations)
	return out
}

// ViolationCount counts every violation, including ones dropped past the
// retention cap.
func (d *Observatory) ViolationCount() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.violations) + d.dropped
}

// Strict reports whether violations should fail the run.
func (d *Observatory) Strict() bool { return d.cfg.Strict }

// Err returns a run-failing error when any limit was violated.
func (d *Observatory) Err() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := len(d.violations) + d.dropped
	if n == 0 {
		return nil
	}
	return errors.New(d.violations[0].String() + violationSuffix(n))
}

func violationSuffix(n int) string {
	if n == 1 {
		return ""
	}
	return fmt.Sprintf(" (and %d more)", n-1)
}

// Baseline returns the declared-model evaluation.
func (d *Observatory) Baseline() Baseline {
	return BaselineFor(d.in)
}

// Summary builds the run-level rollup.
func (d *Observatory) Summary() Summary {
	d.mu.Lock()
	defer d.mu.Unlock()
	s := Summary{
		Windows:     d.winTotal,
		PhaseShifts: len(d.shifts),
		Violations:  len(d.violations) + d.dropped,
	}
	for _, q := range quantities {
		qa := d.quants[q]
		qs := QuantityStatus{Quantity: q, Evaluated: qa.evaluated, MaxRelErr: qa.max,
			Breached: qa.breached, LimitMax: d.limMax[q]}
		if qa.evaluated > 0 {
			qs.MeanRelErr = qa.sum / float64(qa.evaluated)
		}
		s.Quantities = append(s.Quantities, qs)
	}
	for _, kind := range sortedFailKinds(d.fails) {
		fa := d.fails[kind]
		s.MTBF = append(s.MTBF, MTBFStatus{
			Kind: kind, Failures: fa.n,
			MeasuredSecs: float64(fa.lastUS) / float64(fa.n) / 1e6,
		})
	}
	return s
}

func sortedFailKinds(m map[string]*failAcc) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// ForecastWindowBytes is the drift-corrected interconnect forecast the
// control plane's burn-rate admission consults: the larger of the last
// window's predicted (staged supply) and measured (shipped) bytes. ok is
// false until a window with remote traffic has closed.
func (d *Observatory) ForecastWindowBytes() (bytes float64, ok bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if !d.haveWB {
		return 0, false
	}
	return math.Max(d.lastPredWB, d.lastMeasWB), true
}

// WindowDuration returns the estimator window length.
func (d *Observatory) WindowDuration() time.Duration {
	return time.Duration(d.windowUS) * time.Microsecond
}
