package drift

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"

	"nvmcp/internal/model"
	"nvmcp/internal/obs"
)

func testInputs() Inputs {
	return Inputs{
		Params: model.Params{
			TCompute:      100 * time.Second,
			IntervalLocal: 10 * time.Second,
			CkptSize:      100 << 20,
			NVMBWPerCore:  100e6,
		},
		Ranks:    4,
		IterTime: 10 * time.Second,
	}
}

func TestRelErr(t *testing.T) {
	cases := []struct {
		pred, meas, want float64
	}{
		{0, 0, 0},
		{1, 1, 0},
		{1, 0, 1},
		{0, 1, 1},
		{2, 1, 0.5},
		{1, 2, 0.5},
		{-1, 1, 2.0 / 1},
	}
	for _, c := range cases {
		got := relErr(c.pred, c.meas)
		if math.Abs(got-c.want) > 1e-12 {
			t.Errorf("relErr(%g, %g) = %g, want %g", c.pred, c.meas, got, c.want)
		}
	}
	// Symmetric in its arguments, and bounded [0, 1] for same-sign inputs.
	if relErr(3, 7) != relErr(7, 3) {
		t.Errorf("relErr not symmetric")
	}
	if e := relErr(1e-9, 1e9); e < 0 || e > 1 {
		t.Errorf("relErr(1e-9, 1e9) = %g out of [0, 1]", e)
	}
}

func TestSpecValidate(t *testing.T) {
	good := &Spec{
		WindowSecs:  2,
		Limits:      []Limit{{Quantity: QtyCkptTime, MaxRelErr: 0.5, Over: 2}},
		PhaseFactor: 3,
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	var nilSpec *Spec
	if err := nilSpec.Validate(); err != nil {
		t.Fatalf("nil spec rejected: %v", err)
	}
	bad := []Spec{
		{WindowSecs: -1},
		{PhaseFactor: 0.5},
		{PhaseWarmup: -1},
		{Limits: []Limit{{Quantity: "bogus", MaxRelErr: 0.5}}},
		{Limits: []Limit{{Quantity: QtyCkptTime, MaxRelErr: 0}}},
		{Limits: []Limit{{Quantity: QtyCkptTime, MaxRelErr: 1.5}}},
		{Limits: []Limit{{Quantity: QtyCkptTime, MaxRelErr: 0.5, Over: -1}}},
		{Limits: []Limit{
			{Quantity: QtyCkptTime, MaxRelErr: 0.5},
			{Quantity: QtyCkptTime, MaxRelErr: 0.3},
		}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad[%d] %+v accepted", i, s)
		}
	}
}

func TestQuantitiesSorted(t *testing.T) {
	qs := Quantities()
	if len(qs) != 4 {
		t.Fatalf("Quantities() = %v, want 4 entries", qs)
	}
	for i := 1; i < len(qs); i++ {
		if qs[i-1] >= qs[i] {
			t.Fatalf("Quantities() not sorted: %v", qs)
		}
	}
	for _, q := range qs {
		if !knownQuantity(q) {
			t.Errorf("knownQuantity(%q) = false", q)
		}
	}
	if knownQuantity("bogus") {
		t.Errorf("knownQuantity accepted bogus")
	}
}

// TestEstimators drives one window of synthetic telemetry through Observe
// and checks every measured estimator and drift gauge that closes with it.
func TestEstimators(t *testing.T) {
	d := New(Config{Enabled: true, Spec: Spec{WindowSecs: 10}}, testInputs(), nil)
	sec := func(s float64) int64 { return int64(s * 1e6) }
	// 8 chunks staged, 2 re-dirtied -> redirty_rate 0.25.
	for i := 0; i < 8; i++ {
		d.Observe(obs.Event{TUS: sec(1), Type: obs.EvChunkStaged, Bytes: 1 << 20})
	}
	d.Observe(obs.Event{TUS: sec(2), Type: obs.EvChunkReDirtied, Bytes: 1 << 20})
	d.Observe(obs.Event{TUS: sec(2), Type: obs.EvChunkReDirtied, Bytes: 1 << 20})
	// One commit: 100 MB copied in 2 s -> nvm_bw 50 MB/s; the model predicts
	// t_lcl = 100 MB / 100 MB/s = 1 s vs measured 2 s -> err 0.5.
	d.Observe(obs.Event{TUS: sec(3), Type: obs.EvCheckpointCommit, Bytes: 100 << 20,
		Attrs: map[string]string{"dur_us": "2000000", "copied": "6", "skipped": "2"}})
	// Iterations for the efficiency estimator.
	d.Observe(obs.Event{TUS: sec(4), Type: obs.EvIteration})
	// Close window 0.
	d.Finalize(10 * time.Second)

	ws := d.Windows()
	if len(ws) != 1 {
		t.Fatalf("got %d windows, want 1", len(ws))
	}
	v := ws[0].Values
	approx := func(key string, want float64) {
		t.Helper()
		got, ok := v[key]
		if !ok {
			t.Fatalf("window missing %q: %v", key, v)
		}
		if math.Abs(got-want) > 1e-9*math.Max(1, math.Abs(want)) {
			t.Errorf("%s = %g, want %g", key, got, want)
		}
	}
	approx("redirty_rate", 0.25)
	approx("precopy_hit_rate", 0.25) // 2 skipped of 8 touched
	approx("nvm_bw", float64(100<<20)/2)
	approx("ckpt_time_pred_s", float64(100<<20)/100e6)
	approx("ckpt_time_meas_s", 2)
	approx("err_"+QtyCkptTime, relErr(float64(100<<20)/100e6, 2))
	// T_p = I - t_c: predicted 10-1.049 vs measured 10-2.
	predTp := 10 - float64(100<<20)/100e6
	approx("precopy_tp_pred_s", predTp)
	approx("precopy_tp_meas_s", 8)
	approx("err_"+QtyPrecopyTp, relErr(predTp, 8))
	// RemoteOn is false: no window_bytes gauge.
	if _, ok := v["err_"+QtyWindowBytes]; ok {
		t.Errorf("window_bytes gauge present without a remote tier: %v", v)
	}
}

// TestZeroCopyCommitSkipsCkptTime holds the estimator gate: a commit whose
// pre-copy pass already moved every byte measures only fixed overhead the
// model does not predict, so it must not score as drift.
func TestZeroCopyCommitSkipsCkptTime(t *testing.T) {
	d := New(Config{Enabled: true, Spec: Spec{WindowSecs: 10}}, testInputs(), nil)
	d.Observe(obs.Event{TUS: 1e6, Type: obs.EvCheckpointCommit, Bytes: 0,
		Attrs: map[string]string{"dur_us": "1500", "copied": "0", "skipped": "8"}})
	d.Finalize(10 * time.Second)
	v := d.Windows()[0].Values
	for _, key := range []string{"err_" + QtyCkptTime, "err_" + QtyPrecopyTp, "nvm_bw"} {
		if _, ok := v[key]; ok {
			t.Errorf("%s evaluated on a zero-copy commit: %v", key, v)
		}
	}
	if hit := v["precopy_hit_rate"]; hit != 1 {
		t.Errorf("precopy_hit_rate = %g, want 1", hit)
	}
}

// TestWindowBytesSteadyState checks the interconnect gauge: the model
// spreads D x ranks evenly over the remote interval, so a window shipping
// exactly that rate reads zero drift and a silent drain window is skipped.
func TestWindowBytesSteadyState(t *testing.T) {
	in := testInputs()
	in.RemoteOn = true
	in.Params.IntervalRemote = 20 * time.Second
	in.Params.RemoteBWPerCore = 50e6
	d := New(Config{Enabled: true, Spec: Spec{WindowSecs: 10}}, in, nil)

	// Steady state: D*ranks / I_rmt * window = 100MB*4/20s*10s = 200 MB.
	want := float64(in.Params.CkptSize) * 4 / 20 * 10
	d.Observe(obs.Event{TUS: 1e6, Type: obs.EvChunkShipped, Bytes: int64(want)})
	// Window 1 has no remote traffic at all -> skipped, not 100% drift.
	d.Observe(obs.Event{TUS: 11e6, Type: obs.EvIteration})
	d.Finalize(20 * time.Second)

	ws := d.Windows()
	if len(ws) != 2 {
		t.Fatalf("got %d windows, want 2", len(ws))
	}
	if e := ws[0].Values["err_"+QtyWindowBytes]; e != 0 {
		t.Errorf("steady-state drain scored drift %g, want 0 (values %v)", e, ws[0].Values)
	}
	if _, ok := ws[1].Values["err_"+QtyWindowBytes]; ok {
		t.Errorf("silent window scored window_bytes drift: %v", ws[1].Values)
	}

	fc, ok := d.ForecastWindowBytes()
	if !ok {
		t.Fatalf("ForecastWindowBytes not ready after a remote window")
	}
	if math.Abs(fc-want) > 1 {
		t.Errorf("forecast = %g, want ~%g", fc, want)
	}
}

func TestForecastWindowBytesNotReady(t *testing.T) {
	d := New(Config{Enabled: true}, testInputs(), nil)
	if _, ok := d.ForecastWindowBytes(); ok {
		t.Fatalf("forecast ready before any remote window closed")
	}
}

// TestLimitEpisodes holds the violation semantics: Over consecutive
// breached windows fire exactly one violation per episode; a clean window
// resets the streak and re-arms the limit.
func TestLimitEpisodes(t *testing.T) {
	in := testInputs()
	cfg := Config{Enabled: true, Spec: Spec{
		WindowSecs: 10,
		Limits:     []Limit{{Quantity: QtyCkptTime, MaxRelErr: 0.3, Over: 2}},
	}}
	d := New(cfg, in, nil)
	// Predicted t_lcl is 1.049 s (100 MB at 100 MB/s). durUS sets measured.
	commit := func(sec int64, durUS string) {
		d.Observe(obs.Event{TUS: sec * 1e6, Type: obs.EvCheckpointCommit, Bytes: 100 << 20,
			Attrs: map[string]string{"dur_us": durUS, "copied": "8"}})
	}
	commit(5, "5000000")  // w0 breach (err ~0.79), streak 1: no fire
	commit(15, "5000000") // w1 breach, streak 2: fire
	commit(25, "5000000") // w2 breach, streak 3: already fired, no refire
	commit(35, "1100000") // w3 clean (err ~0.05): reset
	commit(45, "5000000") // w4 breach, streak 1
	commit(55, "5000000") // w5 breach, streak 2: second episode fires
	d.Finalize(60 * time.Second)

	vs := d.Violations()
	if len(vs) != 2 {
		t.Fatalf("got %d violations, want 2 episodes: %+v", len(vs), vs)
	}
	if vs[0].Window != 1 || vs[1].Window != 5 {
		t.Errorf("violations at windows %d, %d; want 1, 5", vs[0].Window, vs[1].Window)
	}
	for _, v := range vs {
		if v.Quantity != QtyCkptTime || v.Over != 2 || v.MaxRelErr != 0.3 {
			t.Errorf("violation fields off: %+v", v)
		}
	}
	if d.ViolationCount() != 2 {
		t.Errorf("ViolationCount = %d, want 2", d.ViolationCount())
	}
	if err := d.Err(); err == nil {
		t.Errorf("Err() = nil with violations on the log")
	}
	sum := d.Summary()
	for _, q := range sum.Quantities {
		if q.Quantity == QtyCkptTime {
			if q.Evaluated != 6 || q.Breached != 5 {
				t.Errorf("ckpt_time status = %+v, want evaluated 6 breached 5", q)
			}
		}
	}
}

// TestPhaseShiftFiresOnce seeds a steady re-dirty regime, shifts it once,
// and holds the detector to exactly one firing: the shift window itself,
// not the settled post-shift windows.
func TestPhaseShiftFiresOnce(t *testing.T) {
	d := New(Config{Enabled: true, Spec: Spec{WindowSecs: 10}}, testInputs(), nil)
	window := func(idx int64, staged, redirtied int) {
		base := idx * 10e6
		for i := 0; i < staged; i++ {
			d.Observe(obs.Event{TUS: base + 1e6, Type: obs.EvChunkStaged, Bytes: 1 << 20})
		}
		for i := 0; i < redirtied; i++ {
			d.Observe(obs.Event{TUS: base + 2e6, Type: obs.EvChunkReDirtied, Bytes: 1 << 20})
		}
	}
	// Warmup regime: rate 0.1 for 4 windows (warmup is 3).
	for i := int64(0); i < 4; i++ {
		window(i, 10, 1)
	}
	// Shift: rate jumps to 0.5 (factor 5 > 2, abs change 0.4 > guard).
	window(4, 10, 5)
	// Post-shift: the new regime stays at 0.5; no further firing.
	window(5, 10, 5)
	window(6, 10, 5)
	d.Finalize(70 * time.Second)

	shifts := d.PhaseShifts()
	if len(shifts) != 1 {
		t.Fatalf("got %d phase shifts, want exactly 1: %+v", len(shifts), shifts)
	}
	s := shifts[0]
	if s.Window != 4 {
		t.Errorf("shift at window %d, want 4", s.Window)
	}
	if math.Abs(s.From-0.1) > 1e-9 || math.Abs(s.To-0.5) > 1e-9 {
		t.Errorf("shift regime %g -> %g, want 0.1 -> 0.5", s.From, s.To)
	}
	if sum := d.Summary(); sum.PhaseShifts != 1 {
		t.Errorf("Summary.PhaseShifts = %d, want 1", sum.PhaseShifts)
	}
}

// TestPhaseShiftAbsGuard: a tiny regime doubling (0.01 -> 0.02) satisfies
// the factor but not the absolute guard, so it must not fire.
func TestPhaseShiftAbsGuard(t *testing.T) {
	d := New(Config{Enabled: true, Spec: Spec{WindowSecs: 10}}, testInputs(), nil)
	window := func(idx int64, staged, redirtied int) {
		base := idx * 10e6
		for i := 0; i < staged; i++ {
			d.Observe(obs.Event{TUS: base + 1e6, Type: obs.EvChunkStaged})
		}
		for i := 0; i < redirtied; i++ {
			d.Observe(obs.Event{TUS: base + 2e6, Type: obs.EvChunkReDirtied})
		}
	}
	for i := int64(0); i < 4; i++ {
		window(i, 100, 1) // rate 0.01
	}
	window(4, 100, 2) // rate 0.02: x2 but abs change 0.01 < 0.05
	d.Finalize(50 * time.Second)
	if shifts := d.PhaseShifts(); len(shifts) != 0 {
		t.Fatalf("abs guard failed, fired on noise: %+v", shifts)
	}
}

func TestMeasuredMTBF(t *testing.T) {
	d := New(Config{Enabled: true, Spec: Spec{WindowSecs: 10}}, testInputs(), nil)
	// Two soft failures at 20 s and 40 s -> measured local MTBF 20 s.
	d.Observe(obs.Event{TUS: 20e6, Type: obs.EvFailure, Attrs: map[string]string{"kind": "soft"}})
	d.Observe(obs.Event{TUS: 40e6, Type: obs.EvFailure, Attrs: map[string]string{"kind": "soft"}})
	// One hard failure at 30 s -> measured remote MTBF 30 s.
	d.Observe(obs.Event{TUS: 30e6, Type: obs.EvFailure, Attrs: map[string]string{"kind": "node-loss"}})
	d.Observe(obs.Event{TUS: 45e6, Type: obs.EvIteration})
	d.Finalize(50 * time.Second)

	ws := d.Windows()
	last := ws[len(ws)-1].Values
	if got := last["mtbf_local_s"]; math.Abs(got-20) > 1e-9 {
		t.Errorf("mtbf_local_s = %g, want 20", got)
	}
	if got := last["mtbf_remote_s"]; math.Abs(got-30) > 1e-9 {
		t.Errorf("mtbf_remote_s = %g, want 30", got)
	}
	sum := d.Summary()
	if len(sum.MTBF) != 2 {
		t.Fatalf("Summary.MTBF = %+v, want 2 classes", sum.MTBF)
	}
	if sum.MTBF[0].Kind != "node-loss" || sum.MTBF[1].Kind != "soft" {
		t.Errorf("MTBF classes not sorted: %+v", sum.MTBF)
	}
}

// TestReplayMatchesObserve holds the single-fold invariant: the live tap
// path and the post-merge replay path produce byte-identical reports.
func TestReplayMatchesObserve(t *testing.T) {
	in := testInputs()
	in.RemoteOn = true
	in.Params.IntervalRemote = 20 * time.Second
	cfg := Config{Enabled: true, Spec: Spec{
		WindowSecs: 5,
		Limits:     []Limit{{Quantity: QtyCkptTime, MaxRelErr: 0.3}},
	}}
	var events []obs.Event
	for i := int64(0); i < 12; i++ {
		base := i * 5e6
		events = append(events,
			obs.Event{TUS: base + 1e6, Type: obs.EvChunkStaged, Bytes: 4 << 20},
			obs.Event{TUS: base + 2e6, Type: obs.EvCheckpointCommit, Bytes: 16 << 20,
				Attrs: map[string]string{"dur_us": "900000", "copied": "4", "skipped": "1"}},
			obs.Event{TUS: base + 3e6, Type: obs.EvChunkShipped, Bytes: 8 << 20},
			obs.Event{TUS: base + 4e6, Type: obs.EvIteration},
		)
	}
	live := New(cfg, in, nil)
	for _, ev := range events {
		live.Observe(ev)
	}
	live.Finalize(60 * time.Second)

	replayed := New(cfg, in, nil)
	replayed.Replay(events)
	replayed.Finalize(60 * time.Second)

	meta := Meta{Tool: "test", Scenario: "replay", Seed: 7}
	var a, b bytes.Buffer
	if err := WriteJSON(&a, BuildReport(live, meta)); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSON(&b, BuildReport(replayed, meta)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("live and replayed reports differ:\n%s\n---\n%s", a.String(), b.String())
	}
}

func TestReportRoundTrip(t *testing.T) {
	d := New(Config{Enabled: true, Spec: Spec{WindowSecs: 10}}, testInputs(), nil)
	d.Observe(obs.Event{TUS: 1e6, Type: obs.EvCheckpointCommit, Bytes: 100 << 20,
		Attrs: map[string]string{"dur_us": "1200000", "copied": "8"}})
	d.Observe(obs.Event{TUS: 2e6, Type: obs.EvIteration})
	d.Finalize(10 * time.Second)
	rep := BuildReport(d, Meta{Tool: "test", Scenario: "roundtrip", Seed: 3})

	path := filepath.Join(t.TempDir(), "drift.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteJSON(f, rep); err != nil {
		t.Fatal(err)
	}
	f.Close()
	got, err := ReadReportFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.SchemaVersion != SchemaVersion || got.Scenario != "roundtrip" || got.Seed != 3 {
		t.Errorf("roundtrip lost meta: %+v", got)
	}
	if len(got.Windows) != len(rep.Windows) || len(got.Series) == 0 {
		t.Errorf("roundtrip lost rows: %d windows, series %v", len(got.Windows), got.Series)
	}

	// The HTML render carries the section headline and the baseline row.
	var htmlBuf bytes.Buffer
	if err := WriteHTML(&htmlBuf, rep); err != nil {
		t.Fatal(err)
	}
	page := htmlBuf.String()
	for _, want := range []string{"Model drift", "predicted vs measured", "drift (relative error)"} {
		if !bytes.Contains([]byte(page), []byte(want)) {
			t.Errorf("HTML report missing %q", want)
		}
	}
}

// TestBaselineMatchesModel pins the baseline row to the §III closed forms.
func TestBaselineMatchesModel(t *testing.T) {
	in := testInputs()
	in.Params.IntervalRemote = 40 * time.Second
	in.Params.RemoteBWPerCore = 25e6
	b := BaselineFor(in)
	if b.TLclUS != in.Params.LocalCkptTime().Microseconds() {
		t.Errorf("TLclUS = %d, want %d", b.TLclUS, in.Params.LocalCkptTime().Microseconds())
	}
	if b.TRmtUS != in.Params.RemoteCkptTime().Microseconds() {
		t.Errorf("TRmtUS = %d, want %d", b.TRmtUS, in.Params.RemoteCkptTime().Microseconds())
	}
	wantTp := model.PreCopyThreshold(in.Params.IntervalLocal, in.Params.CkptSize, in.Params.NVMBWPerCore)
	if b.PrecopyTpUS != wantTp.Microseconds() {
		t.Errorf("PrecopyTpUS = %d, want %d", b.PrecopyTpUS, wantTp.Microseconds())
	}
	if b.Efficiency <= 0 || b.Efficiency >= 1 {
		t.Errorf("Efficiency = %g, want in (0, 1)", b.Efficiency)
	}
}
