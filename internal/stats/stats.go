// Package stats provides the small statistical helpers shared by the
// workload characterization, tracing, and benchmark-reporting code.
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// Min returns the smallest element of xs, or 0 for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element of xs, or 0 for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation between closest ranks. It copies and sorts internally.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s[lo]
	}
	frac := rank - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Summary bundles the usual descriptive statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	P50    float64
	P95    float64
	Max    float64
	Sum    float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) Summary {
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		StdDev: StdDev(xs),
		Min:    Min(xs),
		P50:    Percentile(xs, 50),
		P95:    Percentile(xs, 95),
		Max:    Max(xs),
		Sum:    Sum(xs),
	}
}

// Histogram counts values into caller-defined right-open bins
// [edge[i], edge[i+1]). Values below the first edge or at/above the last
// edge land in Under/Over.
type Histogram struct {
	Edges  []float64
	Counts []int64
	Under  int64
	Over   int64
	Total  int64
}

// NewHistogram creates a histogram over the given ascending bin edges.
// At least two edges are required.
func NewHistogram(edges []float64) *Histogram {
	if len(edges) < 2 {
		panic("stats: histogram needs at least two edges")
	}
	for i := 1; i < len(edges); i++ {
		if edges[i] <= edges[i-1] {
			panic("stats: histogram edges must be strictly ascending")
		}
	}
	return &Histogram{
		Edges:  append([]float64(nil), edges...),
		Counts: make([]int64, len(edges)-1),
	}
}

// Add counts one observation. NaN is dropped silently (it belongs to no bin
// and would otherwise corrupt the bin search); ±Inf count as Under/Over.
func (h *Histogram) Add(x float64) {
	if math.IsNaN(x) {
		return
	}
	h.Total++
	if x < h.Edges[0] {
		h.Under++
		return
	}
	if x >= h.Edges[len(h.Edges)-1] {
		h.Over++
		return
	}
	// Binary search for the bin.
	i := sort.SearchFloat64s(h.Edges, x)
	// SearchFloat64s returns the first index with edge >= x; x belongs to
	// the bin to the left unless it equals the edge exactly.
	if i < len(h.Edges) && h.Edges[i] == x {
		h.Counts[i]++
		return
	}
	h.Counts[i-1]++
}

// Fraction returns bin i's share of all observations (including under/over).
func (h *Histogram) Fraction(i int) float64 {
	if h.Total == 0 {
		return 0
	}
	return float64(h.Counts[i]) / float64(h.Total)
}
