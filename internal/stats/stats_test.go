package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMeanStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); !almost(m, 5) {
		t.Fatalf("Mean = %v, want 5", m)
	}
	if s := StdDev(xs); !almost(s, 2) {
		t.Fatalf("StdDev = %v, want 2", s)
	}
}

func TestEmptyInputs(t *testing.T) {
	if Mean(nil) != 0 || StdDev(nil) != 0 || Min(nil) != 0 || Max(nil) != 0 || Sum(nil) != 0 {
		t.Fatal("empty-slice helpers must return 0")
	}
	if Percentile(nil, 50) != 0 {
		t.Fatal("Percentile(nil) must return 0")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {25, 2}, {50, 3}, {75, 4}, {100, 5}, {-5, 1}, {110, 5}, {62.5, 3.5},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !almost(got, c.want) {
			t.Fatalf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("input mutated: %v", xs)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.N != 4 || !almost(s.Mean, 2.5) || !almost(s.Min, 1) || !almost(s.Max, 4) || !almost(s.Sum, 10) {
		t.Fatalf("Summary = %+v", s)
	}
	if !almost(s.P50, 2.5) {
		t.Fatalf("P50 = %v, want 2.5", s.P50)
	}
}

func TestHistogramBinning(t *testing.T) {
	h := NewHistogram([]float64{0, 10, 100, 1000})
	for _, x := range []float64{-1, 0, 5, 10, 99, 100, 999, 1000, 5000} {
		h.Add(x)
	}
	if h.Under != 1 {
		t.Fatalf("Under = %d, want 1", h.Under)
	}
	if h.Over != 2 {
		t.Fatalf("Over = %d, want 2 (1000 is right-open)", h.Over)
	}
	// [0,10):{0,5}  [10,100):{10,99}  [100,1000):{100,999}
	want := []int64{2, 2, 2}
	for i, w := range want {
		if h.Counts[i] != w {
			t.Fatalf("Counts = %v, want %v", h.Counts, want)
		}
	}
	if h.Total != 9 {
		t.Fatalf("Total = %d, want 9", h.Total)
	}
	if f := h.Fraction(0); !almost(f, 2.0/9) {
		t.Fatalf("Fraction(0) = %v", f)
	}
}

func TestHistogramPanicsOnBadEdges(t *testing.T) {
	for _, edges := range [][]float64{{1}, {1, 1}, {2, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewHistogram(%v) did not panic", edges)
				}
			}()
			NewHistogram(edges)
		}()
	}
}

func TestPercentileWithinBoundsProperty(t *testing.T) {
	f := func(xs []float64, p float64) bool {
		clean := xs[:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		p = math.Mod(math.Abs(p), 100)
		v := Percentile(clean, p)
		return v >= Min(clean)-1e-9 && v <= Max(clean)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMeanBetweenMinAndMaxProperty(t *testing.T) {
	f := func(xs []float64) bool {
		clean := xs[:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e12 {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		m := Mean(clean)
		return m >= Min(clean)-1e-6 && m <= Max(clean)+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramTotalProperty(t *testing.T) {
	f := func(xs []float64) bool {
		h := NewHistogram([]float64{0, 1, 2, 4, 8})
		n := 0
		for _, x := range xs {
			if math.IsNaN(x) {
				continue
			}
			h.Add(x)
			n++
		}
		var binned int64
		for _, c := range h.Counts {
			binned += c
		}
		return h.Total == int64(n) && binned+h.Under+h.Over == h.Total
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestHistogramAddEdgeCases pins Add's behaviour at exact bin edges and for
// the float special values: a value equal to an interior edge opens the bin
// to its right (bins are right-open), the first and last edges split
// Under/Over, NaN is dropped without counting, and the infinities land in
// Under/Over like any other out-of-range value.
func TestHistogramAddEdgeCases(t *testing.T) {
	cases := []struct {
		name  string
		x     float64
		bin   int // index into Counts, -1 = none
		under int64
		over  int64
		total int64
	}{
		{"below first edge", -0.5, -1, 1, 0, 1},
		{"exactly first edge", 0, 0, 0, 0, 1},
		{"interior value", 5, 0, 0, 0, 1},
		{"exactly interior edge", 10, 1, 0, 0, 1},
		{"just below interior edge", math.Nextafter(10, 0), 0, 0, 0, 1},
		{"exactly last edge", 20, -1, 0, 1, 1},
		{"above last edge", 25, -1, 0, 1, 1},
		{"NaN dropped", math.NaN(), -1, 0, 0, 0},
		{"+Inf overflows", math.Inf(1), -1, 0, 1, 1},
		{"-Inf underflows", math.Inf(-1), -1, 1, 0, 1},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			h := NewHistogram([]float64{0, 10, 20})
			h.Add(c.x)
			if h.Total != c.total {
				t.Fatalf("Total = %d, want %d", h.Total, c.total)
			}
			if h.Under != c.under || h.Over != c.over {
				t.Fatalf("Under/Over = %d/%d, want %d/%d", h.Under, h.Over, c.under, c.over)
			}
			for i, n := range h.Counts {
				want := int64(0)
				if i == c.bin {
					want = 1
				}
				if n != want {
					t.Fatalf("Counts[%d] = %d, want %d", i, n, want)
				}
			}
		})
	}
}
